"""Chaos harness for distributed campaigns (:mod:`repro.campaign`).

Every test runs a real coordinator with real worker *processes* against a
tiny 4-cell grid and injects one failure mode through the
``REPRO_CAMPAIGN_CHAOS`` hook: sudden worker death mid-cell, raised
errors, a wedged worker that stops heartbeating (lease expiry), a hung
simulation (timeout watchdog), a poisoned cell that never succeeds
(quarantine + degraded completion), a halted coordinator (crash-safe
resume), and a corrupted journal.  The invariants under test:

* the campaign always terminates, and every recoverable fault costs
  retries — never cells;
* ``resume`` recomputes only cells that never landed (asserted via store
  hit counts on a fresh handle);
* per-worker stores merge into one whose payloads are byte-identical to a
  serial run's, every time, whatever faults were injected.
"""

from __future__ import annotations

import json
import tomllib
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignConfig,
    campaign_status,
    plan_campaign,
    resume_campaign,
    run_campaign,
)
from repro.campaign.worker import CHAOS_ENV
from repro.cli import main
from repro.config import parse_spec, run_spec
from repro.store import ResultStore, merge_stores
from repro.utils.validation import ValidationError

TINY_GRID = """
[experiment]
name = "tiny"
kind = "grid"
seed = 5
max_time = 500.0

[platform]
preset = "generic"
processors = 100
node_bandwidth = 1.0e6
system_bandwidth = 2.0e7

[[scenarios]]
kind = "mix"
small = 3
io_ratio = 0.2

[[scenarios]]
kind = "mix"
small = 2
io_ratio = 0.4

[schedulers]
names = ["FairShare", "MaxSysEff"]
"""

SPEC_DATA = tomllib.loads(TINY_GRID)
N_CELLS = 4  # 2 scenarios x 2 schedulers


@pytest.fixture(scope="module")
def spec():
    return parse_spec(SPEC_DATA)


@pytest.fixture
def chaos(tmp_path, monkeypatch):
    """Install a chaos table for every worker spawned by this test."""

    def _install(table: dict) -> None:
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps(table, sort_keys=True))
        monkeypatch.setenv(CHAOS_ENV, str(path))

    return _install


def fast_config(**overrides) -> CampaignConfig:
    """Aggressive timings so fault paths resolve in test time, not ops time."""
    kwargs = dict(
        workers=2,
        heartbeat_seconds=0.05,
        lease_seconds=5.0,
        poll_seconds=0.02,
        backoff_base_seconds=0.05,
        backoff_factor=1.5,
        backoff_max_seconds=0.2,
        cell_timeout_seconds=30.0,
    )
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


def canonical_payload(store: ResultStore, key: str) -> str:
    payload = store.get(key)
    assert payload is not None, f"cell {key} missing from {store.root}"
    return json.dumps(payload, sort_keys=True, allow_nan=True)


# ---------------------------------------------------------------------- #
# Baseline and recoverable faults
# ---------------------------------------------------------------------- #
class TestFaultRecovery:
    def test_clean_campaign_lands_every_cell(self, spec, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = run_campaign(
            spec, tmp_path / "camp", store=store, config=fast_config(),
            spec_data=SPEC_DATA,
        )
        assert result.ok
        assert result.landed == result.landed_computed == N_CELLS
        assert result.quarantined == ()
        assert result.worker_deaths == 0
        # Completion unregisters the gc-protection pointer.
        assert list(store.campaigns_dir.glob("*.journal")) == []
        assert campaign_status(tmp_path / "camp")["complete"]

    def test_killed_and_failing_workers_cost_retries_not_cells(
        self, spec, tmp_path, chaos
    ):
        # Cell 0's first host dies mid-cell (kill -9 style); cell 2's
        # first attempt raises.  Both must land on retry.
        chaos({"0": {"exit": [1]}, "2": {"fail": [1]}})
        store = ResultStore(tmp_path / "store")
        result = run_campaign(
            spec, tmp_path / "camp", store=store, config=fast_config(),
            spec_data=SPEC_DATA,
        )
        assert result.ok
        assert result.landed == N_CELLS
        assert result.worker_deaths >= 1
        assert result.retries >= 2

    def test_muted_worker_forfeits_its_lease(self, spec, tmp_path, chaos):
        # The worker wedges *and* stops heartbeating — indistinguishable
        # from kill -9 to the coordinator — so the lease must expire and
        # the cell re-queue to a replacement.
        chaos({"1": {"mute": [1]}})
        store = ResultStore(tmp_path / "store")
        result = run_campaign(
            spec,
            tmp_path / "camp",
            store=store,
            config=fast_config(lease_seconds=1.0),
            spec_data=SPEC_DATA,
        )
        assert result.ok
        assert result.landed == N_CELLS
        assert result.lease_expiries >= 1

    def test_hung_cell_trips_the_timeout_watchdog(self, spec, tmp_path, chaos):
        # The worker hangs but keeps heartbeating: only the per-cell
        # timeout (not lease expiry) can catch this.
        chaos({"0": {"hang": [1]}})
        store = ResultStore(tmp_path / "store")
        result = run_campaign(
            spec,
            tmp_path / "camp",
            store=store,
            config=fast_config(cell_timeout_seconds=1.0),
            spec_data=SPEC_DATA,
        )
        assert result.ok
        assert result.landed == N_CELLS
        assert result.timeouts >= 1
        assert result.lease_expiries == 0

    def test_campaign_store_serves_serial_require_cached_rerun(
        self, spec, tmp_path, chaos
    ):
        chaos({"3": {"exit": [1]}})
        store_root = tmp_path / "store"
        result = run_campaign(
            spec, tmp_path / "camp", store=ResultStore(store_root),
            config=fast_config(), spec_data=SPEC_DATA,
        )
        assert result.ok
        rerun_store = ResultStore(store_root)
        run_spec(spec, store=rerun_store)
        assert rerun_store.stats.hits == N_CELLS
        assert rerun_store.stats.misses == 0


# ---------------------------------------------------------------------- #
# Quarantine and degraded completion
# ---------------------------------------------------------------------- #
class TestQuarantine:
    def test_poisoned_cell_degrades_loudly_instead_of_sinking_the_campaign(
        self, spec, tmp_path, chaos
    ):
        chaos({"1": {"fail": "always"}})
        store = ResultStore(tmp_path / "store")
        result = run_campaign(
            spec,
            tmp_path / "camp",
            store=store,
            config=fast_config(retry_budget=2),
            spec_data=SPEC_DATA,
        )
        assert result.degraded and not result.ok
        assert result.landed == N_CELLS - 1
        assert [q.index for q in result.quarantined] == [1]
        quarantined = result.quarantined[0]
        assert quarantined.attempts == 2
        assert "chaos: injected failure" in quarantined.error
        report = result.failure_report()
        assert "DEGRADED" in report
        assert quarantined.key in report
        assert "--retry-quarantined" in report
        # Degraded completion still completes: pointer released, journal
        # carries the complete record.
        assert list(store.campaigns_dir.glob("*.journal")) == []
        assert campaign_status(tmp_path / "camp")["complete"]

    def test_retry_quarantined_recomputes_only_the_quarantined_cell(
        self, spec, tmp_path, chaos, monkeypatch
    ):
        chaos({"1": {"fail": "always"}})
        store = ResultStore(tmp_path / "store")
        run_campaign(
            spec,
            tmp_path / "camp",
            store=store,
            config=fast_config(retry_budget=2),
            spec_data=SPEC_DATA,
        )
        # Resuming a degraded-complete campaign without --retry-quarantined
        # is a pure report: nothing is recomputed.
        replay = resume_campaign(tmp_path / "camp", store=store)
        assert replay.degraded
        assert replay.landed == N_CELLS - 1
        assert replay.landed_computed == 0
        # Fix the cause (drop the chaos), then retry the quarantine.
        monkeypatch.delenv(CHAOS_ENV)
        fresh = ResultStore(tmp_path / "store")
        result = resume_campaign(
            tmp_path / "camp", store=fresh, retry_quarantined=True
        )
        assert result.ok
        assert result.landed == N_CELLS
        assert result.landed_computed == 1  # only the quarantined cell
        assert fresh.stats.hits == N_CELLS - 1  # landed cells only verified


# ---------------------------------------------------------------------- #
# Crash-safe resume
# ---------------------------------------------------------------------- #
class TestResume:
    def halted_campaign(self, spec, tmp_path) -> Path:
        """A campaign whose coordinator 'crashed' after two cells landed."""
        campaign_dir = tmp_path / "camp"
        result = run_campaign(
            spec,
            campaign_dir,
            store=ResultStore(tmp_path / "store"),
            config=fast_config(workers=1, halt_after_landed=2),
            spec_data=SPEC_DATA,
        )
        assert result.halted and not result.ok
        assert result.landed == 2
        return campaign_dir

    def test_resume_recomputes_only_cells_that_never_landed(self, spec, tmp_path):
        campaign_dir = self.halted_campaign(spec, tmp_path)
        store = ResultStore(tmp_path / "store")
        # The halt left the journal incomplete and the store keys
        # gc-protected, exactly like a real coordinator crash.
        assert not campaign_status(campaign_dir)["complete"]
        plan = plan_campaign(spec)
        assert store.protected_keys() == {cell.key for cell in plan.cells}
        fresh = ResultStore(tmp_path / "store")
        result = resume_campaign(campaign_dir, store=fresh, workers=2)
        assert result.ok
        assert result.resumes == 1
        assert result.landed == N_CELLS
        assert result.landed_computed == N_CELLS - 2
        # The two replayed-landed cells were *verified* against the store
        # (one hit each), never recomputed.
        assert fresh.stats.hits == 2
        assert campaign_status(campaign_dir)["complete"]
        assert store.protected_keys() == frozenset()

    def test_resume_of_a_complete_campaign_is_a_no_op(self, spec, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_campaign(
            spec, tmp_path / "camp", store=store, config=fast_config(),
            spec_data=SPEC_DATA,
        )
        result = resume_campaign(tmp_path / "camp", store=store)
        assert result.ok
        assert result.landed == N_CELLS
        assert result.landed_computed == result.landed_from_store == 0

    def test_resume_survives_journal_corruption(self, spec, tmp_path):
        campaign_dir = self.halted_campaign(spec, tmp_path)
        journal = campaign_dir / "journal.jsonl"
        with open(journal, "ab") as handle:
            handle.write(b'{"type": "landed", "cel\xff\n')  # torn + mangled
        status = campaign_status(campaign_dir)
        assert status["corrupt_journal_lines"] == 1
        assert not status["complete"]
        result = resume_campaign(campaign_dir, workers=2)
        assert result.ok
        assert result.landed == N_CELLS

    def test_resume_refuses_a_changed_spec(self, spec, tmp_path):
        # Tamper the embedded spec (a science knob, not an override):
        # the re-derived plan no longer hashes to the journal's campaign
        # id, and resume must refuse rather than mix results.
        campaign_dir = self.halted_campaign(spec, tmp_path)
        journal = campaign_dir / "journal.jsonl"
        lines = journal.read_text().splitlines()
        header = json.loads(lines[0])
        header["spec_data"]["scenarios"][0]["io_ratio"] = 0.9
        lines[0] = json.dumps(header, sort_keys=True)
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValidationError, match="identity mismatch"):
            resume_campaign(campaign_dir)

    def test_resume_needs_the_embedded_spec(self, spec, tmp_path):
        # Programmatic campaigns that never passed spec_data can be
        # status'd but not resumed.
        run_campaign(
            spec, tmp_path / "camp", store=ResultStore(tmp_path / "store"),
            config=fast_config(),
        )
        with pytest.raises(ValidationError, match="does not embed its spec"):
            resume_campaign(tmp_path / "camp")

    def test_fresh_run_refuses_an_existing_journal(self, spec, tmp_path):
        self.halted_campaign(spec, tmp_path)
        with pytest.raises(ValidationError, match="already holds a campaign journal"):
            run_campaign(
                spec, tmp_path / "camp", store=ResultStore(tmp_path / "store"),
                config=fast_config(), spec_data=SPEC_DATA,
            )


# ---------------------------------------------------------------------- #
# Per-worker stores and merge byte-identity
# ---------------------------------------------------------------------- #
class TestWorkerStoresMerge:
    def test_merged_payloads_byte_identical_to_serial_under_chaos(
        self, spec, tmp_path, chaos
    ):
        # The multi-host mode with faults on top: worker death on one
        # cell, a raised error on another.  Whatever the fault schedule,
        # the merged store must serve a serial rerun with 100% hits and
        # payloads byte-identical to a from-scratch serial run.
        chaos({"0": {"exit": [1]}, "3": {"fail": [1]}})
        main_root = tmp_path / "main-store"
        result = run_campaign(
            spec,
            tmp_path / "camp",
            store=ResultStore(main_root),
            config=fast_config(worker_stores=True),
            spec_data=SPEC_DATA,
        )
        assert result.ok
        assert result.worker_deaths >= 1
        # Only workers that actually landed cells create their store dirs.
        worker_roots = sorted((tmp_path / "camp" / "stores").iterdir())
        assert worker_roots
        report = merge_stores(worker_roots, ResultStore(main_root))
        assert report.copied + report.verified >= N_CELLS
        assert report.skipped_corrupt == 0

        serial_store = ResultStore(tmp_path / "serial-store")
        run_spec(spec, store=serial_store)
        merged = ResultStore(main_root)
        for row in plan_campaign(spec).cells:
            assert canonical_payload(merged, row.key) == canonical_payload(
                serial_store, row.key
            )
        # And the merged store serves the serial runner cold.
        rerun = ResultStore(main_root)
        run_spec(spec, store=rerun)
        assert rerun.stats.misses == 0


# ---------------------------------------------------------------------- #
# CLI surface
# ---------------------------------------------------------------------- #
class TestCampaignCLI:
    @pytest.fixture
    def tiny_spec(self, tmp_path) -> Path:
        path = tmp_path / "tiny.toml"
        path.write_text(TINY_GRID)
        return path

    def test_campaign_run_then_require_cached_serial_rerun(
        self, tiny_spec, tmp_path, capsys
    ):
        camp = tmp_path / "camp"
        store = tmp_path / "store"
        rc = main(
            ["campaign", "run", str(tiny_spec), "--workers", "2",
             "--dir", str(camp), "--store", str(store), "--quiet"]
        )
        assert rc == 0
        assert f"{N_CELLS}/{N_CELLS}" in capsys.readouterr().out
        # The campaign's cells ARE the serial runner's cells: a strict
        # no-simulation rerun succeeds purely from the store.
        assert main(
            ["run", str(tiny_spec), "--store", str(store),
             "--require-cached", "--quiet"]
        ) == 0

    def test_campaign_status_json(self, tiny_spec, tmp_path, capsys):
        camp = tmp_path / "camp"
        rc = main(
            ["campaign", "run", str(tiny_spec), "--dir", str(camp),
             "--store", str(tmp_path / "store"), "--quiet"]
        )
        assert rc == 0
        capsys.readouterr()
        assert main(["campaign", "status", str(camp), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["complete"]
        assert status["counts"]["landed"] == N_CELLS
        assert all(cell["state"] == "landed" for cell in status["cells"])

    def test_degraded_campaign_exits_1_and_reports(
        self, tiny_spec, tmp_path, chaos, capsys
    ):
        chaos({"2": {"fail": "always"}})
        camp = tmp_path / "camp"
        rc = main(
            ["campaign", "run", str(tiny_spec), "--dir", str(camp),
             "--store", str(tmp_path / "store"), "--retry-budget", "2",
             "--quiet"]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "DEGRADED" in captured.err
        assert "cell 2" in captured.err

    def test_halted_campaign_resumes_from_the_cli(
        self, tiny_spec, tmp_path, capsys
    ):
        camp = tmp_path / "camp"
        store = tmp_path / "store"
        rc = main(
            ["campaign", "run", str(tiny_spec), "--workers", "1",
             "--dir", str(camp), "--store", str(store),
             "--halt-after-landed", "2", "--quiet"]
        )
        assert rc == 0
        assert "resume" in capsys.readouterr().out
        rc = main(["campaign", "resume", str(camp), "--workers", "2"])
        assert rc == 0
        assert f"{N_CELLS}/{N_CELLS}" in capsys.readouterr().out

    def test_non_grid_spec_exits_2(self, tmp_path):
        rc = main(
            ["campaign", "run", "examples/specs/figure6.toml",
             "--dir", str(tmp_path / "camp"),
             "--store", str(tmp_path / "store"), "--quiet"]
        )
        assert rc == 2

    def test_resume_without_a_journal_exits_2(self, tmp_path):
        assert main(["campaign", "resume", str(tmp_path / "ghost")]) == 2

    def test_status_without_a_journal_exits_2(self, tmp_path):
        assert main(["campaign", "status", str(tmp_path / "ghost")]) == 2

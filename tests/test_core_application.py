"""Unit tests for the application model (:mod:`repro.core.application`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.application import Application, Instance, total_processors
from repro.utils.validation import ValidationError


class TestInstance:
    def test_basic(self):
        inst = Instance(work=10.0, io_volume=5e6)
        assert inst.work == 10.0 and inst.io_volume == 5e6

    def test_zero_work_allowed_with_io(self):
        assert Instance(work=0.0, io_volume=1.0).work == 0.0

    def test_zero_io_allowed_with_work(self):
        assert Instance(work=1.0, io_volume=0.0).io_volume == 0.0

    def test_both_zero_rejected(self):
        with pytest.raises(ValidationError):
            Instance(work=0.0, io_volume=0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            Instance(work=-1.0, io_volume=1.0)
        with pytest.raises(ValidationError):
            Instance(work=1.0, io_volume=-1.0)


class TestApplicationConstruction:
    def test_periodic_constructor(self):
        app = Application.periodic("a", 16, work=10.0, io_volume=1e6, n_instances=4)
        assert app.n_instances == 4
        assert app.is_periodic
        assert app.total_work == 40.0
        assert app.total_io_volume == 4e6

    def test_from_sequences(self):
        app = Application.from_sequences("a", 8, works=[1, 2, 3], io_volumes=[10, 20, 30])
        assert app.n_instances == 3
        assert not app.is_periodic
        assert app.total_work == 6.0

    def test_from_sequences_length_mismatch(self):
        with pytest.raises(ValidationError):
            Application.from_sequences("a", 8, works=[1, 2], io_volumes=[10])

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Application.periodic("", 8, 1.0, 1.0, 1)

    def test_zero_processors_rejected(self):
        with pytest.raises(ValidationError):
            Application.periodic("a", 0, 1.0, 1.0, 1)

    def test_fractional_processors_rejected(self):
        with pytest.raises(ValidationError):
            Application("a", 2.5, (Instance(1.0, 1.0),))

    def test_no_instances_rejected(self):
        with pytest.raises(ValidationError):
            Application(name="a", processors=4, instances=())

    def test_zero_instance_count_rejected(self):
        with pytest.raises(ValidationError):
            Application.periodic("a", 4, 1.0, 1.0, 0)

    def test_negative_release_rejected(self):
        with pytest.raises(ValidationError):
            Application.periodic("a", 4, 1.0, 1.0, 1, release_time=-1.0)

    def test_instances_are_tuple(self):
        app = Application.periodic("a", 4, 1.0, 1.0, 2)
        assert isinstance(app.instances, tuple)


class TestApplicationDerived:
    def test_io_time_dedicated_node_limited(self):
        # 4 procs * 10 B/s = 40 B/s < B = 1000 B/s -> node-limited
        app = Application.periodic("a", 4, work=1.0, io_volume=400.0, n_instances=1)
        assert app.io_time_dedicated(10.0, 1000.0) == pytest.approx(10.0)

    def test_io_time_dedicated_system_limited(self):
        # 100 procs * 10 B/s = 1000 > B = 500 -> system-limited
        app = Application.periodic("a", 100, work=1.0, io_volume=500.0, n_instances=1)
        assert app.io_time_dedicated(10.0, 500.0) == pytest.approx(1.0)

    def test_optimal_efficiency_formula(self):
        app = Application.periodic("a", 10, work=90.0, io_volume=100.0, n_instances=5)
        # peak = min(10*10, 1e9) = 100 B/s, time_io = 1 s per instance
        rho = app.optimal_efficiency(10.0, 1e9)
        assert rho == pytest.approx(90.0 / 91.0)

    def test_optimal_efficiency_no_io(self):
        app = Application.periodic("a", 10, work=5.0, io_volume=0.0, n_instances=2)
        assert app.optimal_efficiency(10.0, 100.0) == 1.0

    def test_instance_io_time_dedicated(self):
        app = Application.from_sequences("a", 10, works=[1, 1], io_volumes=[100.0, 200.0])
        assert app.instance_io_time_dedicated(1, 10.0, 1e9) == pytest.approx(2.0)

    def test_work_and_volume_arrays(self):
        app = Application.from_sequences("a", 2, works=[1, 2], io_volumes=[3, 4])
        assert np.array_equal(app.work_array(), [1.0, 2.0])
        assert np.array_equal(app.io_volume_array(), [3.0, 4.0])

    def test_with_release_time(self):
        app = Application.periodic("a", 4, 1.0, 1.0, 1)
        moved = app.with_release_time(7.0)
        assert moved.release_time == 7.0 and app.release_time == 0.0
        assert moved.name == app.name

    def test_with_name(self):
        app = Application.periodic("a", 4, 1.0, 1.0, 1)
        renamed = app.with_name("b")
        assert renamed.name == "b" and renamed.instances == app.instances

    def test_is_periodic_false_for_varying(self):
        app = Application.from_sequences("a", 2, works=[1, 2], io_volumes=[1, 1])
        assert not app.is_periodic


def test_total_processors():
    apps = [Application.periodic(f"a{i}", 10 * (i + 1), 1.0, 1.0, 1) for i in range(3)]
    assert total_processors(apps) == 60

"""Shared fixtures for the test suite.

The fixtures provide a deliberately small platform (so hand-computed
expectations stay readable) plus a handful of canonical applications and
scenarios reused across modules.
"""

from __future__ import annotations

import pytest

from repro.core.application import Application
from repro.core.platform import BurstBufferSpec, Platform
from repro.core.scenario import Scenario


@pytest.fixture
def small_platform() -> Platform:
    """100 processors, 1 MB/s per node, 20 MB/s back-end (congestion point 20)."""
    return Platform(
        name="test",
        total_processors=100,
        node_bandwidth=1e6,
        system_bandwidth=2e7,
    )


@pytest.fixture
def bb_platform() -> Platform:
    """Same platform with a small burst buffer (50 MB, fast ingest, 10 MB/s drain)."""
    return Platform(
        name="test-bb",
        total_processors=100,
        node_bandwidth=1e6,
        system_bandwidth=2e7,
        burst_buffer=BurstBufferSpec(
            capacity=5e7, ingest_bandwidth=1e8, drain_bandwidth=1e7
        ),
    )


@pytest.fixture
def single_app() -> Application:
    """One periodic application: 10 nodes, 100 s compute, 100 MB I/O, 3 instances."""
    return Application.periodic(
        name="solo", processors=10, work=100.0, io_volume=1e8, n_instances=3
    )


@pytest.fixture
def two_identical_apps() -> tuple[Application, Application]:
    """Two identical applications that together oversubscribe the back-end."""
    make = lambda name: Application.periodic(  # noqa: E731 - tiny factory
        name=name, processors=40, work=50.0, io_volume=1e9, n_instances=2
    )
    return make("alpha"), make("beta")


@pytest.fixture
def simple_scenario(small_platform, two_identical_apps) -> Scenario:
    """Two identical applications on the small platform."""
    return Scenario(
        platform=small_platform,
        applications=two_identical_apps,
        label="simple",
    )


@pytest.fixture
def heterogeneous_scenario(small_platform) -> Scenario:
    """A big compute-heavy app and two small I/O-heavy apps."""
    big = Application.periodic(
        name="big", processors=60, work=500.0, io_volume=2e9, n_instances=3
    )
    small1 = Application.periodic(
        name="small1", processors=20, work=50.0, io_volume=1e9, n_instances=5
    )
    small2 = Application.periodic(
        name="small2", processors=20, work=80.0, io_volume=5e8, n_instances=4
    )
    return Scenario(
        platform=small_platform,
        applications=(big, small1, small2),
        label="heterogeneous",
    )

"""Unit tests for periodic schedules, greedy insertion and the period search."""

from __future__ import annotations

import pytest

from repro.core.application import Application
from repro.core.platform import Platform
from repro.periodic.heuristics import InsertInScheduleCong, InsertInScheduleThrou
from repro.periodic.insertion import GreedyInserter
from repro.periodic.period_search import minimum_period, search_period
from repro.periodic.schedule import PeriodicSchedule, ScheduledInstance
from repro.utils.validation import ValidationError

PLATFORM = Platform("p", 100, 1e6, 2e7)


def app(name="a", procs=10, work=100.0, vol=1e8, n=3):
    # 10 procs * 1 MB/s = 10 MB/s -> vol 1e8 takes 10 s dedicated.
    return Application.periodic(name, procs, work, vol, n)


class TestScheduledInstance:
    def test_properties(self):
        inst = ScheduledInstance("a", 0.0, 10.0, 10.0, 5.0, 1e6)
        assert inst.compute_end == 10.0
        assert inst.io_end == 15.0
        assert inst.end == 15.0

    def test_io_before_compute_end_rejected(self):
        with pytest.raises(ValidationError):
            ScheduledInstance("a", 0.0, 10.0, 5.0, 5.0, 1e6)

    def test_negative_values_rejected(self):
        with pytest.raises(ValidationError):
            ScheduledInstance("a", -1.0, 10.0, 10.0, 5.0, 1e6)


class TestPeriodicSchedule:
    def test_requires_periodic_applications(self):
        aperiodic = Application.from_sequences("x", 10, [1, 2], [1e6, 1e6])
        with pytest.raises(ValidationError):
            PeriodicSchedule(PLATFORM, [aperiodic], period=100.0)

    def test_add_instance_and_counts(self):
        schedule = PeriodicSchedule(PLATFORM, [app()], period=300.0)
        schedule.add_instance(ScheduledInstance("a", 0.0, 100.0, 100.0, 10.0, 1e6))
        assert schedule.instances_per_application()["a"] == 1
        assert len(schedule) == 1
        assert schedule.is_complete()

    def test_volume_mismatch_rejected(self):
        schedule = PeriodicSchedule(PLATFORM, [app()], period=300.0)
        with pytest.raises(ValidationError):
            # Transfers 10 procs * 1e6 * 5 s = 5e7 != 1e8.
            schedule.add_instance(ScheduledInstance("a", 0.0, 100.0, 100.0, 5.0, 1e6))

    def test_own_overlap_rejected(self):
        schedule = PeriodicSchedule(PLATFORM, [app(n=2)], period=400.0)
        schedule.add_instance(ScheduledInstance("a", 0.0, 100.0, 100.0, 10.0, 1e6))
        with pytest.raises(ValidationError):
            schedule.add_instance(ScheduledInstance("a", 50.0, 100.0, 150.0, 10.0, 1e6))

    def test_bandwidth_cap_rejected(self):
        big1 = app("b1", procs=50, vol=1e9)   # 50 MB/s demand at gamma = b
        big2 = app("b2", procs=50, vol=1e9)
        schedule = PeriodicSchedule(PLATFORM, [big1, big2], period=1000.0)
        # b1 uses min(50*1e6, 2e7) = 2e7 -> gamma = 4e5 over 50 s.
        schedule.add_instance(ScheduledInstance("b1", 0.0, 100.0, 100.0, 50.0, 4e5))
        with pytest.raises(ValidationError):
            # Overlapping I/O that would need another 2e7.
            schedule.add_instance(ScheduledInstance("b2", 10.0, 100.0, 110.0, 50.0, 4e5))

    def test_node_bandwidth_cap_rejected(self):
        schedule = PeriodicSchedule(PLATFORM, [app()], period=300.0)
        with pytest.raises(ValidationError):
            schedule.add_instance(ScheduledInstance("a", 0.0, 100.0, 100.0, 5.0, 2e6))

    def test_period_overflow_rejected(self):
        schedule = PeriodicSchedule(PLATFORM, [app()], period=105.0)
        with pytest.raises(ValidationError):
            schedule.add_instance(ScheduledInstance("a", 0.0, 100.0, 100.0, 10.0, 1e6))

    def test_steady_state_efficiency(self):
        schedule = PeriodicSchedule(PLATFORM, [app()], period=220.0)
        schedule.add_instance(ScheduledInstance("a", 0.0, 100.0, 100.0, 10.0, 1e6))
        schedule.add_instance(ScheduledInstance("a", 110.0, 100.0, 210.0, 10.0, 1e6))
        assert schedule.steady_state_efficiency("a") == pytest.approx(200.0 / 220.0)
        summary = schedule.summary()
        assert summary.dilation == pytest.approx((100 / 110) / (200 / 220))

    def test_available_bandwidth_profile(self):
        schedule = PeriodicSchedule(PLATFORM, [app()], period=300.0)
        schedule.add_instance(ScheduledInstance("a", 0.0, 100.0, 100.0, 10.0, 1e6))
        assert schedule.available_bandwidth(50.0) == pytest.approx(2e7)
        assert schedule.available_bandwidth(105.0) == pytest.approx(2e7 - 1e7)
        assert schedule.min_available_bandwidth(0.0, 300.0) == pytest.approx(1e7)

    def test_validate_passes_on_consistent_schedule(self):
        schedule = PeriodicSchedule(PLATFORM, [app()], period=300.0)
        schedule.add_instance(ScheduledInstance("a", 0.0, 100.0, 100.0, 10.0, 1e6))
        schedule.validate()


class TestGreedyInserter:
    def test_first_instance_at_time_zero(self):
        schedule = PeriodicSchedule(PLATFORM, [app()], period=300.0)
        inserter = GreedyInserter(schedule)
        assert inserter.try_insert(app()) is True
        placed = schedule.instances[0]
        assert placed.compute_start == 0.0
        assert placed.io_start == pytest.approx(100.0)
        assert placed.io_bandwidth == pytest.approx(1e6)

    def test_insertion_stops_when_full(self):
        schedule = PeriodicSchedule(PLATFORM, [app()], period=230.0)
        inserter = GreedyInserter(schedule)
        count = 0
        while inserter.try_insert(app()):
            count += 1
        # Each instance occupies 110 s: exactly two fit in 230 s.
        assert count == 2

    def test_two_apps_share_bandwidth_windows(self):
        a = app("a", procs=30, vol=6e8)   # peak 2e7 system-limited -> 30 s I/O
        c = app("c", procs=30, vol=6e8)
        schedule = PeriodicSchedule(PLATFORM, [a, c], period=400.0)
        inserter = GreedyInserter(schedule)
        assert inserter.try_insert(a)
        assert inserter.try_insert(c)
        schedule.validate()
        # The second application cannot transfer at the full back-end rate
        # while the first one is transferring, so either it starts later or
        # it runs at a reduced constant bandwidth.
        first, second = schedule.instances
        if second.io_start < first.io_end:
            assert second.io_bandwidth < PLATFORM.node_bandwidth

    def test_unknown_application_rejected(self):
        schedule = PeriodicSchedule(PLATFORM, [app("a")], period=300.0)
        inserter = GreedyInserter(schedule)
        with pytest.raises(ValidationError):
            inserter.find_placement(app("ghost"))

    def test_infeasible_period_returns_none(self):
        schedule = PeriodicSchedule(PLATFORM, [app(work=500.0)], period=100.0)
        inserter = GreedyInserter(schedule)
        assert inserter.find_placement(app(work=500.0)) is None


class TestHeuristics:
    def apps(self):
        return [
            app("io_heavy", procs=20, work=50.0, vol=1e9, n=3),
            app("cpu_heavy", procs=40, work=400.0, vol=2e8, n=3),
            app("balanced", procs=30, work=150.0, vol=5e8, n=3),
        ]

    @pytest.mark.parametrize("heuristic", [InsertInScheduleThrou(), InsertInScheduleCong()])
    def test_schedules_are_valid_and_complete(self, heuristic):
        schedule = heuristic.build(PLATFORM, self.apps(), period=1200.0)
        schedule.validate()
        assert schedule.is_complete()

    def test_throu_fills_more_of_the_period(self):
        # The throughput heuristic should never schedule fewer total
        # instances than needed for completeness; usually it packs more of
        # the I/O-bound application.
        schedule = InsertInScheduleThrou().build(PLATFORM, self.apps(), period=1200.0)
        counts = schedule.instances_per_application()
        assert counts["io_heavy"] >= 1

    def test_cong_balances_scheduled_load(self):
        # The Dilation-oriented heuristic balances n_per * (w + time_io), not
        # raw instance counts: every application's scheduled load should end
        # up within one footprint of the others.
        schedule = InsertInScheduleCong().build(PLATFORM, self.apps(), period=1200.0)
        counts = schedule.instances_per_application()
        loads = {}
        footprints = {}
        for application in self.apps():
            inst = application.instances[0]
            peak = PLATFORM.peak_application_bandwidth(application.processors)
            footprint = inst.work + inst.io_volume / peak
            footprints[application.name] = footprint
            loads[application.name] = counts[application.name] * footprint
        spread = max(loads.values()) - min(loads.values())
        assert spread <= max(footprints.values()) + 1e-6

    def test_empty_applications_rejected(self):
        with pytest.raises(ValidationError):
            InsertInScheduleThrou().build(PLATFORM, [], period=100.0)


class TestPeriodSearch:
    def test_minimum_period(self):
        a = app(procs=10, work=100.0, vol=1e8)  # 100 + 10
        c = app("c", procs=20, work=300.0, vol=2e8)  # 300 + 10
        assert minimum_period(PLATFORM, [a, c]) == pytest.approx(310.0)

    def test_search_returns_best_and_sweep(self):
        apps = [app("a", procs=30, work=100.0, vol=3e8, n=2),
                app("b", procs=30, work=150.0, vol=3e8, n=2)]
        result = search_period(
            InsertInScheduleCong(), PLATFORM, apps,
            objective="dilation", epsilon=0.25, max_period_factor=4.0,
        )
        assert result.best_schedule.is_complete()
        assert len(result.sweep) >= 2
        assert result.best_point.period == result.best_period

    def test_objective_validation(self):
        with pytest.raises(ValidationError):
            search_period(
                InsertInScheduleCong(), PLATFORM, [app()], objective="nonsense"
            )

    def test_bad_epsilon(self):
        with pytest.raises(ValidationError):
            search_period(InsertInScheduleCong(), PLATFORM, [app()], epsilon=0.0)

    def test_max_period_smaller_than_min_rejected(self):
        with pytest.raises(ValidationError):
            search_period(
                InsertInScheduleCong(), PLATFORM, [app(work=500.0)], max_period=10.0
            )

    def test_all_incomplete_sweep_still_returns_a_schedule(self):
        """Regression: with the dilation objective every incomplete schedule
        scores -inf, which used to tie the -inf best-score sentinel so no
        schedule was ever selected (AssertionError at the end of the sweep).
        Three machine-filling applications can never all fit in one period
        at max_period_factor=1.0."""
        apps = [app(f"app-{i}", procs=100, work=100.0, vol=1e8, n=2)
                for i in range(3)]
        result = search_period(
            InsertInScheduleCong(), PLATFORM, apps,
            objective="dilation", max_period_factor=1.0,
        )
        assert result.best_schedule is not None
        assert not result.best_schedule.is_complete()
        assert result.best_point.period == result.best_period

    def test_best_system_efficiency_not_worse_than_first_point(self):
        apps = [app("a", procs=30, work=100.0, vol=3e8, n=2),
                app("b", procs=30, work=150.0, vol=3e8, n=2)]
        result = search_period(
            InsertInScheduleThrou(), PLATFORM, apps,
            objective="system_efficiency", epsilon=0.3, max_period_factor=3.0,
        )
        first = result.sweep[0]
        best = result.best_point
        if first.complete:
            assert best.system_efficiency >= first.system_efficiency - 1e-9

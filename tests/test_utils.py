"""Unit tests for :mod:`repro.utils` (RNG plumbing, units, validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.units import (
    GB,
    KB,
    MB,
    TB,
    format_bandwidth,
    format_bytes,
    format_duration,
)
from repro.utils.validation import (
    ValidationError,
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
)

# --------------------------------------------------------------------------- #
# rng
# --------------------------------------------------------------------------- #
class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(123).integers(0, 1_000_000, size=5)
        b = as_rng(123).integers(0, 1_000_000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 1_000_000, size=10)
        b = as_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_rng(seq), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            as_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 7)) == 7

    def test_zero_is_allowed(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(42, 2)
        a = children[0].integers(0, 1_000_000, size=10)
        b = children[1].integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_deterministic_from_seed(self):
        a = [g.integers(0, 1000) for g in spawn_rngs(9, 3)]
        b = [g.integers(0, 1000) for g in spawn_rngs(9, 3)]
        assert a == b


# --------------------------------------------------------------------------- #
# units
# --------------------------------------------------------------------------- #
class TestUnits:
    def test_constants_are_decimal(self):
        assert KB == 1e3 and MB == 1e6 and GB == 1e9 and TB == 1e12

    @pytest.mark.parametrize(
        "value, expected",
        [
            (512.0, "512 B"),
            (1.5e3, "1.50 KB"),
            (2.5e6, "2.50 MB"),
            (3e9, "3.00 GB"),
            (1.2e12, "1.20 TB"),
        ],
    )
    def test_format_bytes(self, value, expected):
        assert format_bytes(value) == expected

    def test_format_bytes_negative(self):
        assert format_bytes(-2e6) == "-2.00 MB"

    def test_format_bandwidth(self):
        assert format_bandwidth(88e9) == "88.00 GB/s"

    @pytest.mark.parametrize(
        "seconds, fragment",
        [
            (5e-7, "us"),
            (0.05, "ms"),
            (42.0, "s"),
            (600.0, "min"),
            (7200.0, "h"),
        ],
    )
    def test_format_duration_units(self, seconds, fragment):
        assert fragment in format_duration(seconds)


# --------------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------------- #
class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 3) == 3.0

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive("x", 0)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative("x", -1e-9)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), "zzz", None])
    def test_check_finite_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_finite("x", bad)

    def test_check_in_range_inclusive(self):
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=False)

    def test_check_in_range_lower_violation(self):
        with pytest.raises(ValidationError):
            check_in_range("x", -0.5, 0.0, None)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

"""Tests of the determinism linter (:mod:`repro.lint`).

Each rule is pinned by a fixture pair: a seeded violation that must be
flagged with the right ID and line, and a clean variant that must not.
Waiver/baseline semantics, the ``--format json`` schema and the CLI exit
codes are pinned alongside, plus the self-check: the shipped tree must scan
clean with an empty baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Baseline,
    BaselineError,
    all_rule_ids,
    format_json,
    load_baseline,
    run_lint,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def scan(tmp_path: Path, files: dict[str, str], **kwargs):
    """Write ``files`` under ``tmp_path`` and lint the tree."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return run_lint([tmp_path], root=tmp_path, **kwargs)


def rules_hit(result) -> set[str]:
    return {f.rule for f in result.findings}


# --------------------------------------------------------------------------- #
# Rule registry
# --------------------------------------------------------------------------- #


def test_all_seven_rules_registered():
    assert sorted(all_rule_ids()) == [
        "C001",
        "D001",
        "D002",
        "D003",
        "D004",
        "D005",
        "O001",
    ]


# --------------------------------------------------------------------------- #
# D001 — unseeded / global RNG
# --------------------------------------------------------------------------- #


class TestD001:
    def test_stdlib_random_flagged_in_simulator(self, tmp_path):
        result = scan(
            tmp_path,
            {"simulator/bad.py": "import random\n\n\ndef f():\n    return random.random()\n"},
        )
        (finding,) = result.findings
        assert finding.rule == "D001"
        assert finding.path == "simulator/bad.py"
        assert finding.line == 5

    def test_numpy_legacy_global_flagged(self, tmp_path):
        result = scan(
            tmp_path,
            {"workload/bad.py": "import numpy as np\n\nnp.random.seed(0)\nx = np.random.rand(3)\n"},
        )
        assert [f.line for f in result.findings] == [3, 4]
        assert rules_hit(result) == {"D001"}

    def test_unseeded_default_rng_flagged_seeded_clean(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "faults/bad.py": "import numpy as np\n\nrng = np.random.default_rng()\n",
                "faults/good.py": "import numpy as np\n\nrng = np.random.default_rng(1234)\n",
            },
        )
        (finding,) = result.findings
        assert (finding.rule, finding.path, finding.line) == ("D001", "faults/bad.py", 3)

    def test_unseeded_constructor_allowed_outside_strict_scopes(self, tmp_path):
        # The unseeded-constructor check is scope-limited; the global-state
        # APIs (random.*, numpy legacy) are flagged everywhere the rule runs.
        result = scan(
            tmp_path,
            {"report/ok.py": "import numpy as np\n\nrng = np.random.default_rng()\n"},
        )
        assert result.findings == []

    def test_stdlib_random_flagged_everywhere(self, tmp_path):
        result = scan(
            tmp_path,
            {"report/bad.py": "import random\n\nx = random.random()\n"},
        )
        assert rules_hit(result) == {"D001"}


# --------------------------------------------------------------------------- #
# D002 — wall clock / entropy reads
# --------------------------------------------------------------------------- #


class TestD002:
    def test_time_time_flagged_in_store(self, tmp_path):
        result = scan(
            tmp_path,
            {"store/bad.py": "import time\n\nstamp = time.time()\n"},
        )
        (finding,) = result.findings
        assert (finding.rule, finding.path, finding.line) == ("D002", "store/bad.py", 3)

    def test_uuid_and_urandom_flagged(self, tmp_path):
        result = scan(
            tmp_path,
            {
                "core/bad.py": (
                    "import os\nimport uuid\n\n"
                    "token = uuid.uuid4()\nnoise = os.urandom(8)\n"
                )
            },
        )
        assert [(f.rule, f.line) for f in result.findings] == [("D002", 4), ("D002", 5)]

    def test_out_of_scope_module_not_flagged(self, tmp_path):
        result = scan(
            tmp_path,
            {"analysis/ok.py": "import time\n\nstamp = time.time()\n"},
        )
        assert result.findings == []


# --------------------------------------------------------------------------- #
# D003 — unordered set iteration
# --------------------------------------------------------------------------- #


class TestD003:
    def test_for_loop_over_set_flagged(self, tmp_path):
        source = (
            "def f(items):\n"
            "    seen = set(items)\n"
            "    out = []\n"
            "    for x in seen:\n"
            "        out.append(x)\n"
            "    return out\n"
        )
        result = scan(tmp_path, {"core/bad.py": source})
        (finding,) = result.findings
        assert (finding.rule, finding.line) == ("D003", 4)

    def test_sorted_iteration_clean(self, tmp_path):
        source = (
            "def f(items):\n"
            "    seen = set(items)\n"
            "    return [x for x in sorted(seen)]\n"
        )
        result = scan(tmp_path, {"core/good.py": source})
        assert result.findings == []

    def test_len_and_membership_clean(self, tmp_path):
        source = (
            "def f(items, probe):\n"
            "    seen = frozenset(items)\n"
            "    return len(seen), probe in seen\n"
        )
        result = scan(tmp_path, {"core/good.py": source})
        assert result.findings == []

    def test_list_conversion_flagged(self, tmp_path):
        source = "def f(a, b):\n    return list(set(a) | set(b))\n"
        result = scan(tmp_path, {"core/bad.py": source})
        assert [(f.rule, f.line) for f in result.findings] == [("D003", 2)]


# --------------------------------------------------------------------------- #
# D004 — json.dumps without sort_keys
# --------------------------------------------------------------------------- #


class TestD004:
    def test_unsorted_dumps_flagged(self, tmp_path):
        result = scan(
            tmp_path,
            {"experiments/bad.py": 'import json\n\ntext = json.dumps({"a": 1})\n'},
        )
        (finding,) = result.findings
        assert (finding.rule, finding.line) == ("D004", 3)

    def test_sorted_dumps_clean(self, tmp_path):
        result = scan(
            tmp_path,
            {"experiments/good.py": 'import json\n\ntext = json.dumps({"a": 1}, sort_keys=True)\n'},
        )
        assert result.findings == []

    def test_canonical_module_exempt(self, tmp_path):
        result = scan(
            tmp_path,
            {"store/canonical.py": 'import json\n\ntext = json.dumps({"a": 1})\n'},
        )
        assert result.findings == []


# --------------------------------------------------------------------------- #
# D005 — mutable default arguments
# --------------------------------------------------------------------------- #


class TestD005:
    def test_list_default_flagged(self, tmp_path):
        result = scan(
            tmp_path,
            {"utils/bad.py": "def f(xs=[]):\n    return xs\n"},
        )
        (finding,) = result.findings
        assert (finding.rule, finding.line) == ("D005", 1)

    def test_dict_call_default_flagged(self, tmp_path):
        result = scan(
            tmp_path,
            {"utils/bad.py": "def f(mapping=dict()):\n    return mapping\n"},
        )
        assert rules_hit(result) == {"D005"}

    def test_immutable_defaults_clean(self, tmp_path):
        result = scan(
            tmp_path,
            {"utils/good.py": "def f(xs=(), name='x', n=0, flag=None):\n    return xs\n"},
        )
        assert result.findings == []


# --------------------------------------------------------------------------- #
# C001 — store-key dataclass field contract
# --------------------------------------------------------------------------- #


class TestC001:
    def test_callable_field_flagged(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "from typing import Callable\n"
            "\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class KeySpec:\n"
            "    name: str\n"
            "    fn: Callable[[int], int]\n"
        )
        result = scan(tmp_path, {"config/spec.py": source})
        (finding,) = result.findings
        assert (finding.rule, finding.path, finding.line) == ("C001", "config/spec.py", 8)
        assert "Callable" in finding.message

    def test_transitive_field_flagged(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "from typing import Any\n"
            "\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class Inner:\n"
            "    blob: Any\n"
            "\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class Outer:\n"
            "    inner: Inner\n"
        )
        result = scan(tmp_path, {"experiments/cases.py": source})
        assert any(f.rule == "C001" and f.line == 7 for f in result.findings)

    def test_serializable_fields_clean(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "from typing import Optional\n"
            "\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class CleanSpec:\n"
            "    name: str\n"
            "    seed: int\n"
            "    scale: float\n"
            "    windows: tuple[float, ...]\n"
            "    note: Optional[str] = None\n"
        )
        result = scan(tmp_path, {"config/spec.py": source})
        assert result.findings == []

    def test_non_root_module_not_walked(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "from typing import Callable\n"
            "\n"
            "\n"
            "@dataclass\n"
            "class Helper:\n"
            "    fn: Callable[[int], int]\n"
        )
        result = scan(tmp_path, {"report/helpers.py": source})
        assert result.findings == []


# --------------------------------------------------------------------------- #
# O001 — telemetry isolation
# --------------------------------------------------------------------------- #


class TestO001:
    def test_obs_import_in_key_module_flagged(self, tmp_path):
        source = (
            "import json\n"
            "from repro.obs.telemetry import recorder\n"
            "\n"
            "\n"
            "def canonical_json(payload):\n"
            '    return json.dumps(payload, sort_keys=True, separators=(",", ":"))\n'
        )
        result = scan(tmp_path, {"store/canonical.py": source})
        assert any(
            f.rule == "O001" and f.path == "store/canonical.py" and f.line == 2
            for f in result.findings
        )

    def test_obs_import_in_store_handle_allowed(self, tmp_path):
        # The store *handle* may observe its own latencies; only the
        # key-defining modules are off limits.
        source = "from repro.obs.telemetry import recorder\n\nOBS = recorder()\n"
        result = scan(tmp_path, {"store/store.py": source})
        assert "O001" not in rules_hit(result)

    def test_obs_type_in_key_dataclass_closure_flagged(self, tmp_path):
        obs_source = (
            "from dataclasses import dataclass\n"
            "\n"
            "\n"
            "@dataclass\n"
            "class Recorder:\n"
            "    enabled: bool\n"
        )
        spec_source = (
            "from dataclasses import dataclass\n"
            "\n"
            "from repro.obs.telemetry import Recorder\n"
            "\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class KeySpec:\n"
            "    name: str\n"
            "    recorder: Recorder\n"
        )
        result = scan(
            tmp_path,
            {"obs/telemetry.py": obs_source, "config/spec.py": spec_source},
        )
        assert any(
            f.rule == "O001"
            and f.path == "config/spec.py"
            and f.line == 9
            and "Recorder" in f.message
            for f in result.findings
        )

    def test_obs_free_key_dataclass_clean(self, tmp_path):
        obs_source = (
            "from dataclasses import dataclass\n"
            "\n"
            "\n"
            "@dataclass\n"
            "class Recorder:\n"
            "    enabled: bool\n"
        )
        spec_source = (
            "from dataclasses import dataclass\n"
            "\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class KeySpec:\n"
            "    name: str\n"
            "    seed: int\n"
        )
        result = scan(
            tmp_path,
            {"obs/telemetry.py": obs_source, "config/spec.py": spec_source},
        )
        assert "O001" not in rules_hit(result)


# --------------------------------------------------------------------------- #
# Waivers
# --------------------------------------------------------------------------- #


class TestWaivers:
    def test_waiver_suppresses_named_rule(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "stamp = time.time()  # reprolint: ignore[D002] — test fixture\n"
        )
        result = scan(tmp_path, {"store/waived.py": source})
        assert result.findings == []

    def test_waiver_for_other_rule_does_not_suppress(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "stamp = time.time()  # reprolint: ignore[D001] — wrong rule\n"
        )
        result = scan(tmp_path, {"store/waived.py": source})
        assert rules_hit(result) == {"D002"}

    def test_waiver_is_line_scoped(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "a = time.time()  # reprolint: ignore[D002] — only this line\n"
            "b = time.time()\n"
        )
        result = scan(tmp_path, {"store/waived.py": source})
        assert [f.line for f in result.findings] == [4]

    def test_multi_rule_waiver(self, tmp_path):
        source = (
            "import json\n"
            "import time\n"
            "\n"
            'x = json.dumps({"t": time.time()})  # reprolint: ignore[D002, D004] — both\n'
        )
        result = scan(tmp_path, {"store/waived.py": source})
        assert result.findings == []


# --------------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------------- #


class TestBaseline:
    def test_baseline_suppresses_exact_finding(self, tmp_path):
        files = {"periodic/known.py": "import time\n\nstamp = time.time()\n"}
        result = scan(tmp_path, files)
        (finding,) = result.findings
        baseline = Baseline([finding.key()])
        rescanned = scan(tmp_path, files, baseline=baseline)
        assert rescanned.findings == []
        assert rescanned.n_baselined == 1
        assert rescanned.exit_code() == 0

    def test_baseline_round_trip(self, tmp_path):
        files = {"periodic/known.py": "import time\n\nstamp = time.time()\n"}
        result = scan(tmp_path, files)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, result.findings)
        loaded = load_baseline(baseline_path)
        rescanned = scan(tmp_path, files, baseline=loaded)
        assert rescanned.findings == []

    def test_protected_prefixes_rejected(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {"path": "store/store.py", "rule": "D002", "line": 10}
                    ],
                }
            )
        )
        with pytest.raises(BaselineError, match="store/store.py"):
            load_baseline(baseline_path)

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(REPO_ROOT / "reprolint-baseline.json")
        assert not baseline.entries


# --------------------------------------------------------------------------- #
# Output formats and severity overrides
# --------------------------------------------------------------------------- #


class TestOutput:
    def test_json_schema_stable(self, tmp_path):
        result = scan(tmp_path, {"store/bad.py": "import time\n\nt = time.time()\n"})
        payload = format_json(result)
        assert set(payload) == {"version", "findings", "counts", "parse_errors"}
        assert payload["version"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "message", "severity"}
        assert payload["counts"] == {
            "errors": 1,
            "warnings": 0,
            "files": 1,
            "baselined": 0,
        }
        json.dumps(payload)  # must be JSON-able as-is

    def test_severity_override_demotes_to_warning(self, tmp_path):
        result = scan(
            tmp_path,
            {"periodic/relaxed.py": "import time\n\nt = time.time()\n"},
            severity_overrides={"periodic/": "warning"},
        )
        (finding,) = result.findings
        assert finding.severity == "warning"
        assert result.exit_code() == 0

    def test_parse_error_is_reported_and_fails(self, tmp_path):
        result = scan(tmp_path, {"core/broken.py": "def f(:\n"})
        assert result.parse_errors
        assert result.exit_code() == 1


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


class TestCli:
    def test_exit_one_on_findings(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "simulator").mkdir()
        (tmp_path / "simulator" / "bad.py").write_text(
            "import random\n\nx = random.random()\n"
        )
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "simulator"]) == 1
        out = capsys.readouterr().out
        assert "D001" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, monkeypatch):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "pkg"]) == 0

    def test_json_output_parses(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "store").mkdir()
        (tmp_path / "store" / "bad.py").write_text("import time\n\nt = time.time()\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "store", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["errors"] == 1

    def test_missing_explicit_baseline_is_usage_error(self, tmp_path, monkeypatch):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "pkg", "--baseline", "missing.json"]) == 2

    def test_list_rules(self, monkeypatch, capsys, tmp_path):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D001", "D002", "D003", "D004", "D005", "C001", "O001"):
            assert rule_id in out


# --------------------------------------------------------------------------- #
# Self-check: the shipped tree is clean
# --------------------------------------------------------------------------- #


class TestSelfCheck:
    def test_src_tree_scans_clean(self):
        baseline = load_baseline(REPO_ROOT / "reprolint-baseline.json")
        result = run_lint([REPO_ROOT / "src"], baseline=baseline, root=REPO_ROOT)
        assert result.parse_errors == []
        assert result.findings == []
        assert result.n_baselined == 0
        assert result.exit_code() == 0

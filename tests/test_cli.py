"""Smoke tests for the ``repro`` command line (:mod:`repro.cli`).

Two layers:

* in-process calls to :func:`repro.cli.main` (fast, covers argument wiring
  and exit codes);
* real ``subprocess`` invocations of ``python -m repro`` (covers the
  ``__main__`` entry point and the console-script code path end to end).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import __version__
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")

TINY_GRID = """
[experiment]
name = "tiny"
kind = "grid"
seed = 5
max_time = 500.0

[platform]
preset = "generic"
processors = 100
node_bandwidth = 1.0e6
system_bandwidth = 2.0e7

[[scenarios]]
kind = "mix"
small = 3
io_ratio = 0.2

[schedulers]
names = ["FairShare", "MaxSysEff"]
"""


@pytest.fixture
def tiny_spec(tmp_path) -> Path:
    path = tmp_path / "tiny.toml"
    path.write_text(TINY_GRID)
    return path


def run_module(*args: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess:
    """Invoke ``python -m repro ...`` exactly like a user would."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC if not existing else SRC + os.pathsep + existing
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
        timeout=120,
    )


# ---------------------------------------------------------------------- #
# In-process
# ---------------------------------------------------------------------- #
class TestMain:
    def test_run_writes_output_and_prints_table(self, tiny_spec, tmp_path, capsys):
        out = tmp_path / "result.json"
        rc = main(["run", str(tiny_spec), "--out", str(out)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "SysEfficiency" in captured.out
        assert out.exists()
        payload = json.loads(out.read_text())
        assert payload["experiment"]["name"] == "tiny"
        assert payload["cells"]

    def test_run_quiet_suppresses_table(self, tiny_spec, capsys):
        rc = main(["run", str(tiny_spec), "--quiet"])
        assert rc == 0
        assert "SysEfficiency" not in capsys.readouterr().out

    def test_run_overrides_applied(self, tiny_spec, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["run", str(tiny_spec), "--quiet", "--out", str(a)]) == 0
        assert main(
            ["run", str(tiny_spec), "--quiet", "--seed", "6", "--out", str(b)]
        ) == 0
        cells_a = json.loads(a.read_text())["cells"]
        cells_b = json.loads(b.read_text())["cells"]
        assert cells_a != cells_b  # a different seed draws different mixes

    def test_run_csv_format(self, tiny_spec, tmp_path):
        out = tmp_path / "cells.csv"
        rc = main(["run", str(tiny_spec), "--quiet", "--out", str(out),
                   "--format", "csv"])
        assert rc == 0
        assert out.read_text().startswith("scenario,")

    def test_validate_good_spec(self, tiny_spec, capsys):
        assert main(["validate", str(tiny_spec)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_runs_build_time_checks(self, tmp_path, capsys):
        """validate must reject specs that parse but can never run."""
        bad = tmp_path / "dup.toml"
        bad.write_text(
            TINY_GRID + '\n[[scenarios]]\nkind = "mix"\nsmall = 2\n'
            'label = "mix-0"\n'  # collides with the first entry's default label
        )
        assert main(["validate", str(bad)]) == 2
        assert "duplicate scenario label" in capsys.readouterr().err

    def test_validate_bad_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('[experiment]\nkind = "nope"\n')
        assert main(["validate", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "experiment.kind" in err and "nope" in err

    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "ghost.toml")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_out_of_range_overrides_exit_2(self, tiny_spec, capsys):
        """Overrides bypass parse_spec; with_overrides re-checks their bounds."""
        assert main(["run", str(tiny_spec), "--seed", "-1"]) == 2
        assert "seed must be >= 0" in capsys.readouterr().err
        assert main(["run", str(tiny_spec), "--max-time", "0"]) == 2
        assert "max_time must be > 0" in capsys.readouterr().err
        assert main(["run", str(tiny_spec), "--max-time", "nan"]) == 2
        assert "max_time must be > 0" in capsys.readouterr().err
        assert main(["run", str(tiny_spec), "--workers", "-2"]) == 2
        assert "workers must be >= 0" in capsys.readouterr().err

    def test_format_without_output_target_exits_2(self, tiny_spec, capsys):
        """--format must not be silently ignored when nothing is written."""
        assert main(["run", str(tiny_spec), "--format", "csv"]) == 2
        assert "--format" in capsys.readouterr().err

    def test_bench_unknown_scheduler_exits_2(self, capsys):
        assert main(["bench", "--scheduler", "MaxSysEfficiency"]) == 2
        err = capsys.readouterr().err
        assert "MaxSysEfficiency" in err and "MaxSysEff" in err

    def test_bench_rejects_non_positive_scale(self, capsys):
        assert main(["bench", "--scale", "0"]) == 2
        assert "scale must be >= 1" in capsys.readouterr().err

    def test_list_commands(self, capsys):
        assert main(["list", "schedulers"]) == 0
        assert "MaxSysEff" in capsys.readouterr().out
        assert main(["list", "categories"]) == 0
        assert "very_large" in capsys.readouterr().out
        assert main(["list", "experiments"]) == 0
        out = capsys.readouterr().out
        assert "congested-moments" in out
        # The ISSUE 3 kinds must be advertised for discoverability.
        assert "periodic" in out
        assert "analysis" in out

    def test_run_progress_streams_to_stderr(self, tiny_spec, capsys):
        assert main(["run", str(tiny_spec), "--progress", "--quiet"]) == 0
        captured = capsys.readouterr()
        # The tiny grid is 1 scenario x 2 schedulers; status goes to stderr
        # only, so --quiet still leaves stdout a clean artefact.
        lines = [ln for ln in captured.err.splitlines() if ln.startswith("cell ")]
        assert len(lines) == 2
        assert captured.out.strip() == ""

    def test_run_without_progress_keeps_stderr_clean(self, tiny_spec, capsys):
        assert main(["run", str(tiny_spec)]) == 0
        assert capsys.readouterr().err == ""

    def test_list_specs_reads_bundled_library(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["list", "specs"]) == 0
        out = capsys.readouterr().out
        assert "figure6.toml" in out
        assert "INVALID" not in out

    def test_list_specs_falls_back_to_repo_library_from_other_cwd(
        self, capsys, monkeypatch, tmp_path
    ):
        """`repro list specs` must work outside the repo root (installed use)."""
        monkeypatch.chdir(tmp_path)
        assert main(["list", "specs"]) == 0
        assert "figure6.toml" in capsys.readouterr().out

    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "FairShare" in out and "MinDilation" in out


# ---------------------------------------------------------------------- #
# Result store & multi-spec validate surface (ISSUE 5)
# ---------------------------------------------------------------------- #
class TestStoreSurface:
    def test_validate_accepts_multiple_paths(self, tiny_spec, tmp_path, capsys):
        other = tmp_path / "other.toml"
        other.write_text(TINY_GRID)
        assert main(["validate", str(tiny_spec), str(other)]) == 0
        out = capsys.readouterr().out
        assert out.count("OK:") == 2

    def test_validate_all_reports_every_broken_spec(self, tmp_path, capsys):
        (tmp_path / "good.toml").write_text(TINY_GRID)
        (tmp_path / "bad1.toml").write_text('[experiment]\nkind = "nope"\n')
        (tmp_path / "bad2.toml").write_text("[experiment]\n")
        assert main(["validate", "--all", str(tmp_path)]) == 2
        captured = capsys.readouterr()
        # All specs are checked; each broken one gets a path-prefixed error.
        assert "good.toml" in captured.out
        assert "bad1.toml" in captured.err and "bad2.toml" in captured.err

    def test_validate_without_paths_exits_2(self, capsys):
        assert main(["validate"]) == 2
        assert "at least one spec" in capsys.readouterr().err

    def test_explicit_path_and_all_dir_dedupe(self, tiny_spec, capsys):
        """A spec named both ways must be validated (and run) once."""
        assert main(["validate", str(tiny_spec),
                     "--all", str(tiny_spec.parent)]) == 0
        assert capsys.readouterr().out.count("OK:") == 1

    def test_run_second_invocation_is_served_from_store(
        self, tiny_spec, tmp_path, capsys
    ):
        store = tmp_path / "store"
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["run", str(tiny_spec), "--store", str(store),
                     "--out", str(a)]) == 0
        first = capsys.readouterr().out
        assert "misses" in first  # the store line is part of the run output
        # --require-cached: the whole run must come out of the store.
        assert main(["run", str(tiny_spec), "--store", str(store),
                     "--require-cached", "--out", str(b)]) == 0
        second = capsys.readouterr().out
        assert "0 misses" in second and "hit rate 100.0%" in second
        assert a.read_text() == b.read_text()  # byte-identical artefact

    def test_require_cached_fails_on_a_cold_store(self, tiny_spec, tmp_path, capsys):
        assert main(["run", str(tiny_spec), "--store", str(tmp_path / "cold"),
                     "--require-cached", "--quiet"]) == 2
        assert "--require-cached" in capsys.readouterr().err

    def test_no_cache_disables_the_store(self, tiny_spec, tmp_path, capsys):
        assert main(["run", str(tiny_spec), "--no-cache"]) == 0
        assert "store:" not in capsys.readouterr().out
        assert main(["run", str(tiny_spec), "--no-cache",
                     "--store", str(tmp_path)]) == 2
        assert "--store has no effect" in capsys.readouterr().err
        assert main(["run", str(tiny_spec), "--no-cache",
                     "--require-cached"]) == 2

    def test_store_info_gc_clear_cycle(self, tiny_spec, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["run", str(tiny_spec), "--store", str(store),
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["store", "info", "--store", str(store), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["entries"] == 2  # 1 scenario x 2 schedulers
        assert main(["store", "gc", "--store", str(store),
                     "--max-entries", "1"]) == 0
        assert "evicted 1" in capsys.readouterr().out
        assert main(["store", "clear", "--store", str(store)]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_store_gc_without_budget_exits_2(self, tmp_path, capsys):
        assert main(["store", "gc", "--store", str(tmp_path)]) == 2
        assert "budget" in capsys.readouterr().err


# ---------------------------------------------------------------------- #
# Subprocess (python -m repro)
# ---------------------------------------------------------------------- #
class TestSubprocess:
    def test_version(self):
        proc = run_module("--version")
        assert proc.returncode == 0
        assert __version__ in proc.stdout

    def test_help_mentions_subcommands(self):
        proc = run_module("--help")
        assert proc.returncode == 0
        for command in ("run", "quickstart", "bench", "list"):
            assert command in proc.stdout

    def test_run_spec_end_to_end(self, tiny_spec, tmp_path):
        out = tmp_path / "out.json"
        proc = run_module("run", str(tiny_spec), "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "tiny" in proc.stdout
        assert json.loads(out.read_text())["experiment"]["seed"] == 5

    def test_bad_spec_reports_path_on_stderr(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text("[experiment]\n")  # missing required 'kind'
        proc = run_module("run", str(bad))
        assert proc.returncode == 2
        assert "experiment.kind" in proc.stderr

    def test_figure6_example_spec_truncated(self, tmp_path):
        """The README quickstart command, at reduced depth."""
        out = tmp_path / "figure6.json"
        proc = run_module(
            "run", "examples/specs/figure6.toml",
            "--max-time", "500", "--out", str(out),
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(out.read_text())
        assert payload["experiment"]["kind"] == "figure6"
        assert payload["panels"]["10large-20"]

"""Feasibility invariants and regression pins for the bandwidth allocators.

Two jobs:

* **invariants** — property-style randomized tests (hypothesis) driving
  :func:`favor_in_order` / :func:`fair_share` with adversarial inputs
  (single-node monsters, thousands-of-processors apps, vanishing and huge
  back-ends) and asserting the Section 2.1 feasibility constraints on every
  output: per-processor cap ``b``, aggregate cap ``B``, non-negativity, and
  no allocation to applications that never asked;
* **regression** — the flat single-pass :func:`fair_share` rewrite is
  pinned against a literal transcription of the pre-rewrite water-filling
  loop, element for element, so the micro-optimization provably did not
  move a single float.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import BandwidthAllocation
from repro.simulator.bandwidth import fair_share, favor_in_order
from repro.simulator.interface import ApplicationPhase, ApplicationView

# --------------------------------------------------------------------------- #
# Strategies: adversarial candidate sets
# --------------------------------------------------------------------------- #


def _view(i: int, procs: int, remaining: float, pending: bool) -> ApplicationView:
    phase = ApplicationPhase.IO_PENDING if pending else ApplicationPhase.COMPUTING
    return ApplicationView(
        name=f"app{i:05d}",
        processors=procs,
        phase=phase,
        remaining_io_volume=remaining if pending else 0.0,
        io_started=False,
        achieved_efficiency=0.5,
        optimal_efficiency=0.9,
        last_io_end=-math.inf,
        io_request_time=float(i) if pending else None,
        instance_index=0,
        n_instances=2,
        total_io_transferred=0.0,
    )


adversarial_views = st.lists(
    st.builds(
        _view,
        i=st.integers(0, 99_999),
        procs=st.one_of(
            st.integers(1, 4),          # tiny apps
            st.integers(1, 50_000),     # machine-scale monsters
        ),
        remaining=st.one_of(
            st.floats(1e-3, 1e0),       # nearly drained transfers
            st.floats(1e3, 1e15),       # bulk writes
        ),
        pending=st.booleans(),
    ),
    min_size=0,
    max_size=25,
    unique_by=lambda v: v.name,
)

bandwidths = st.one_of(
    st.floats(0.0, 1e-9),     # vanishing
    st.floats(1e-3, 1e6),     # node-card scale
    st.floats(1e6, 1e12),     # back-end scale
)


def _assert_feasible(
    allocation: BandwidthAllocation,
    views: list[ApplicationView],
    node_bandwidth: float,
    total_bandwidth: float,
) -> None:
    candidates = {v.name for v in views if v.wants_io}
    total = 0.0
    for name, gamma in allocation.per_processor_bandwidth.items():
        assert name in candidates, f"{name} never asked for I/O"
        assert gamma > 0.0, "allocations must be strictly positive"
        assert gamma <= node_bandwidth * (1 + 1e-9), "per-processor cap violated"
        procs = next(v.processors for v in views if v.name == name)
        total += procs * gamma
    assert total <= total_bandwidth * (1 + 1e-9), "back-end cap violated"


# --------------------------------------------------------------------------- #
# Invariants
# --------------------------------------------------------------------------- #


class TestFeasibilityInvariants:
    @given(views=adversarial_views, b=bandwidths, total=bandwidths)
    @settings(max_examples=200, deadline=None)
    def test_favor_in_order_is_always_feasible(self, views, b, total):
        ordered = [v for v in views if v.wants_io]
        allocation = favor_in_order(ordered, node_bandwidth=b, total_bandwidth=total)
        _assert_feasible(allocation, views, b, total)

    @given(views=adversarial_views, b=bandwidths, total=bandwidths)
    @settings(max_examples=200, deadline=None)
    def test_fair_share_is_always_feasible(self, views, b, total):
        allocation = fair_share(views, node_bandwidth=b, total_bandwidth=total)
        _assert_feasible(allocation, views, b, total)

    @given(views=adversarial_views, b=bandwidths, total=bandwidths)
    @settings(max_examples=100, deadline=None)
    def test_fair_share_skips_non_candidates(self, views, b, total):
        allocation = fair_share(views, node_bandwidth=b, total_bandwidth=total)
        for v in views:
            if not v.wants_io:
                assert v.name not in allocation

    @given(views=adversarial_views, b=bandwidths, total=bandwidths)
    @settings(max_examples=100, deadline=None)
    def test_favor_in_order_is_work_conserving_or_capped(self, views, b, total):
        """Either every candidate is served at its cap, or B is exhausted."""
        ordered = [v for v in views if v.wants_io]
        allocation = favor_in_order(ordered, node_bandwidth=b, total_bandwidth=total)
        served_rate = sum(
            v.processors * allocation.gamma(v.name) for v in ordered
        )
        all_capped = all(
            allocation.gamma(v.name) >= min(b, total / v.processors) * (1 - 1e-9)
            or allocation.gamma(v.name) == 0.0
            for v in ordered
        )
        exhausted = served_rate >= total * (1 - 1e-6)
        trivially_empty = not ordered or total <= 1e-12 or b <= 1e-12
        assert all_capped or exhausted or trivially_empty


# --------------------------------------------------------------------------- #
# Regression pin: the single-pass fair_share == the historical loop
# --------------------------------------------------------------------------- #


def _fair_share_reference(candidates, node_bandwidth, total_bandwidth):
    """Literal transcription of the pre-rewrite water-filling loop."""
    _EPS = 1e-12
    views = [v for v in candidates if v.wants_io]
    if not views or total_bandwidth <= _EPS:
        return {}
    remaining = float(total_bandwidth)
    unsatisfied = list(views)
    gammas: dict[str, float] = {}
    while unsatisfied and remaining > _EPS:
        total_procs = sum(v.processors for v in unsatisfied)
        share = remaining / total_procs
        capped = [v for v in unsatisfied if share >= node_bandwidth]
        if not capped:
            for v in unsatisfied:
                gammas[v.name] = gammas.get(v.name, 0.0) + share
            remaining = 0.0
            break
        for v in capped:
            already = gammas.get(v.name, 0.0)
            extra = node_bandwidth - already
            gammas[v.name] = node_bandwidth
            remaining -= extra * v.processors
        unsatisfied = [v for v in unsatisfied if v not in capped]
    return {k: g for k, g in gammas.items() if g > _EPS}


class TestFairShareRegression:
    @given(views=adversarial_views, b=bandwidths, total=bandwidths)
    @settings(max_examples=300, deadline=None)
    def test_allocations_bitwise_unchanged(self, views, b, total):
        new = fair_share(views, node_bandwidth=b, total_bandwidth=total)
        old = _fair_share_reference(views, node_bandwidth=b, total_bandwidth=total)
        assert dict(new.per_processor_bandwidth) == old

    def test_congested_equal_share(self):
        views = [_view(i, procs=10, remaining=1e9, pending=True) for i in range(4)]
        allocation = fair_share(views, node_bandwidth=1e6, total_bandwidth=2e7)
        # 40 processors over 2e7 B/s -> 5e5 B/s each, below the 1e6 cap.
        assert all(
            allocation.gamma(v.name) == 2e7 / 40 for v in views
        )

    def test_uncongested_all_capped(self):
        views = [_view(i, procs=5, remaining=1e9, pending=True) for i in range(3)]
        allocation = fair_share(views, node_bandwidth=1e6, total_bandwidth=1e9)
        assert all(allocation.gamma(v.name) == 1e6 for v in views)

"""Property-based tests (hypothesis) on the core invariants.

These fuzz the pieces whose correctness everything else rests on:

* bandwidth allocators never violate the Section 2.1 feasibility constraints;
* the discrete-event engine conserves I/O volume, completes every instance,
  never finishes an application faster than its dedicated-mode bound, and
  reports a dilation >= 1;
* the interference model is monotone and bounded;
* the periodic greedy inserter only ever produces feasible schedules.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.application import Application
from repro.core.platform import Platform
from repro.core.scenario import Scenario
from repro.online.baselines import FairShare
from repro.online.heuristics import MaxSysEff, MinDilation, MinMaxGamma, RoundRobin
from repro.online.priority import Priority
from repro.periodic.heuristics import InsertInScheduleCong, InsertInScheduleThrou
from repro.simulator.bandwidth import fair_share, favor_in_order
from repro.simulator.engine import SimulatorConfig, simulate
from repro.simulator.interface import ApplicationPhase, ApplicationView
from repro.simulator.interference import InterferenceModel

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

views_strategy = st.lists(
    st.builds(
        lambda i, procs, remaining, achieved, optimal, started: ApplicationView(
            name=f"app{i}",
            processors=procs,
            phase=ApplicationPhase.IO_PENDING,
            remaining_io_volume=remaining,
            io_started=started,
            achieved_efficiency=achieved,
            optimal_efficiency=max(achieved, optimal),
            last_io_end=-math.inf,
            io_request_time=0.0,
            instance_index=0,
            n_instances=3,
            total_io_transferred=0.0,
        ),
        i=st.integers(0, 10_000),
        procs=st.integers(1, 500),
        remaining=st.floats(1e3, 1e12),
        achieved=st.floats(0.0, 1.0),
        optimal=st.floats(0.01, 1.0),
        started=st.booleans(),
    ),
    min_size=1,
    max_size=12,
    unique_by=lambda v: v.name,
)


def scenario_strategy():
    """Small random scenarios that always fit a 200-processor platform."""
    app_strategy = st.tuples(
        st.integers(1, 40),                      # processors
        st.floats(1.0, 200.0),                   # work
        st.floats(0.0, 5e8),                     # io volume
        st.integers(1, 4),                       # instances
        st.floats(0.0, 100.0),                   # release time
    )
    return st.lists(app_strategy, min_size=1, max_size=5).map(_build_scenario)


def _build_scenario(rows):
    platform = Platform("prop", 200, 1e6, 1.5e7)
    apps = []
    for i, (procs, work, vol, n_inst, release) in enumerate(rows):
        if work < 1e-3 and vol < 1e-3:
            vol = 1e6
        apps.append(
            Application.periodic(
                name=f"p{i}",
                processors=procs,
                work=work,
                io_volume=vol,
                n_instances=n_inst,
                release_time=release,
            )
        )
    return Scenario(platform=platform, applications=tuple(apps), label="prop")


SCHEDULER_FACTORIES = [
    FairShare,
    RoundRobin,
    MinDilation,
    MaxSysEff,
    lambda: MinMaxGamma(0.5),
    lambda: Priority(MaxSysEff()),
]


# --------------------------------------------------------------------------- #
# Allocation invariants
# --------------------------------------------------------------------------- #
class TestAllocatorProperties:
    @given(views=views_strategy, total=st.floats(0.0, 1e11))
    @settings(max_examples=80, deadline=None)
    def test_favor_in_order_feasible(self, views, total):
        b = 1e6
        alloc = favor_in_order(views, b, total)
        assert all(g <= b * (1 + 1e-9) for g in alloc.per_processor_bandwidth.values())
        used = sum(alloc.gamma(v.name) * v.processors for v in views)
        assert used <= total * (1 + 1e-9)

    @given(views=views_strategy, total=st.floats(0.0, 1e11))
    @settings(max_examples=80, deadline=None)
    def test_fair_share_feasible_and_work_conserving(self, views, total):
        b = 1e6
        alloc = fair_share(views, b, total)
        assert all(g <= b * (1 + 1e-9) for g in alloc.per_processor_bandwidth.values())
        used = sum(alloc.gamma(v.name) * v.processors for v in views)
        assert used <= total * (1 + 1e-9)
        # Work conservation: either the demand or the capacity is saturated.
        demand = sum(min(v.processors * b, total) for v in views)
        if total > 0 and views:
            assert used == pytest.approx(min(total, sum(v.processors * b for v in views)), rel=1e-6) or used <= demand

    @given(
        strength=st.floats(0.01, 5.0),
        floor=st.floats(0.0, 1.0),
        k=st.integers(1, 200),
    )
    @settings(max_examples=100, deadline=None)
    def test_interference_bounded_and_monotone(self, strength, floor, k):
        model = InterferenceModel(strength=strength, floor=floor)
        assert floor - 1e-12 <= model.factor(k) <= 1.0
        assert model.factor(k) >= model.factor(k + 1) - 1e-12


# --------------------------------------------------------------------------- #
# Engine invariants
# --------------------------------------------------------------------------- #
class TestEngineProperties:
    @given(scenario=scenario_strategy(), scheduler_index=st.integers(0, len(SCHEDULER_FACTORIES) - 1))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_simulation_invariants(self, scenario, scheduler_index):
        scheduler = SCHEDULER_FACTORIES[scheduler_index]()
        result = simulate(scenario, scheduler, SimulatorConfig())
        for app in scenario:
            record = result.record(app.name)
            # All I/O volume transferred.
            assert record.total_io_transferred == pytest.approx(
                app.total_io_volume, rel=1e-6, abs=1.0
            )
            # Every instance executed exactly once.
            assert len(record.instances) == app.n_instances
            # Completion never earlier than the dedicated-mode lower bound.
            peak = scenario.platform.peak_application_bandwidth(app.processors)
            dedicated = app.total_work + app.total_io_volume / peak
            assert record.completion_time >= app.release_time + dedicated - 1e-6
            # Dilation is at least 1 (up to numerical noise: the engine cuts
            # intervals with an absolute epsilon of 1e-9 s, which shows up as
            # a relative error on sub-second applications).
            assert record.dilation() >= 1.0 - 1e-6
        summary = result.summary()
        assert 0.0 <= summary.system_efficiency <= 100.0 * (1.0 + 1e-6)
        assert summary.system_efficiency <= summary.upper_limit * (1.0 + 1e-6)

    @given(scenario=scenario_strategy())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_fair_share_is_deterministic(self, scenario):
        a = simulate(scenario, FairShare(), SimulatorConfig())
        b = simulate(scenario, FairShare(), SimulatorConfig())
        assert a.makespan == pytest.approx(b.makespan)
        assert a.summary().dilation == pytest.approx(b.summary().dilation)


# --------------------------------------------------------------------------- #
# Periodic schedule invariants
# --------------------------------------------------------------------------- #
class TestPeriodicProperties:
    periodic_apps = st.lists(
        st.tuples(
            st.integers(1, 60),            # processors
            st.floats(10.0, 300.0),        # work
            st.floats(1e6, 1e9),           # io volume
        ),
        min_size=1,
        max_size=4,
    )

    @given(rows=periodic_apps, heuristic_index=st.integers(0, 1), factor=st.floats(1.5, 4.0))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_greedy_schedules_always_feasible(self, rows, heuristic_index, factor):
        platform = Platform("prop", 200, 1e6, 1.5e7)
        apps = [
            Application.periodic(f"q{i}", procs, work, vol, n_instances=2)
            for i, (procs, work, vol) in enumerate(rows)
        ]
        heuristic = (InsertInScheduleThrou(), InsertInScheduleCong())[heuristic_index]
        worst = max(
            a.instances[0].work
            + a.instances[0].io_volume / platform.peak_application_bandwidth(a.processors)
            for a in apps
        )
        schedule = heuristic.build(platform, apps, period=worst * factor)
        # validate() raises on any constraint violation.
        schedule.validate()
        summary = schedule.summary()
        assert 0.0 <= summary.system_efficiency <= 100.0 + 1e-9

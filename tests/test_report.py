"""Tests of the report subsystem (:mod:`repro.report`).

The acceptance shape: ``repro report`` renders figures + a self-contained
HTML report for ``figure6.toml`` and ``analysis_figures.toml`` **with and
without matplotlib installed**.  The text-fallback path is pinned via
``REPRO_FORCE_TEXT_CHARTS``; the PNG path runs for real when matplotlib is
importable and is otherwise exercised through a stub backend (asserting the
wiring: PNG files written, base64-embedded, no ``<pre>`` fallback).
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.report.build as build_module
from repro.cli import main
from repro.config import load_spec, run_spec
from repro.report import (
    FigureData,
    build_report,
    extract_figures,
    matplotlib_available,
    render_text,
)
from repro.store import ResultStore
from repro.utils.validation import ValidationError

REPO_ROOT = Path(__file__).resolve().parent.parent
FIGURE6_SPEC = REPO_ROOT / "examples" / "specs" / "figure6.toml"
ANALYSIS_SPEC = REPO_ROOT / "examples" / "specs" / "analysis_figures.toml"

#: One warm store per test session: the specs under test run once and every
#: report build afterwards is served from cache.
@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("report-store"))
    for path in (FIGURE6_SPEC, ANALYSIS_SPEC):
        # Native spec depth: build_report must key-match `repro run` exactly.
        run_spec(load_spec(path), store=store)
    return store


@pytest.fixture(autouse=True)
def force_text_charts(monkeypatch):
    """Default every test to the matplotlib-free path (deterministic in CI)."""
    monkeypatch.setenv("REPRO_FORCE_TEXT_CHARTS", "1")


def _spec_with_store(path, store):
    result = run_spec(load_spec(path), store=store)
    assert result.store_stats["misses"] == 0, "warm store expected"
    return result


# ---------------------------------------------------------------------- #
# Figure extraction
# ---------------------------------------------------------------------- #
class TestExtractFigures:
    def test_figure6_payload_yields_per_panel_figures(self, warm_store):
        result = _spec_with_store(FIGURE6_SPEC, warm_store)
        figures = extract_figures(result.payload)
        assert [f.slug for f in figures] == [
            "panel-10large-20-efficiency", "panel-10large-20-dilation",
        ]
        efficiency = figures[0]
        assert efficiency.chart == "bars"
        assert len(efficiency.categories) == 8  # the eight Figure 6 series
        for values in efficiency.series.values():
            assert len(values) == 8
        assert efficiency.table_rows  # companion table present

    def test_analysis_payload_yields_figures_1_5_7(self, warm_store):
        result = _spec_with_store(ANALYSIS_SPEC, warm_store)
        slugs = [f.slug for f in extract_figures(result.payload)]
        assert slugs == [
            "figure1", "figure5-usage", "figure5-io-share", "figure7",
        ]

    def test_figure7_is_a_line_chart_over_sensibilities(self, warm_store):
        result = _spec_with_store(ANALYSIS_SPEC, warm_store)
        figure7 = [f for f in extract_figures(result.payload)
                   if f.slug == "figure7"][0]
        assert figure7.chart == "lines"
        assert figure7.x == [0.0, 15.0, 30.0]
        assert set(figure7.series) == {"MinDilation", "MaxSysEff", "MinMax-0.5"}

    def test_unknown_payload_is_rejected(self):
        with pytest.raises(ValidationError):
            extract_figures({"cells": []})
        with pytest.raises(ValidationError):
            extract_figures({"experiment": {"kind": "nope"}})

    def test_series_length_mismatch_is_rejected(self):
        with pytest.raises(ValidationError):
            FigureData(
                slug="bad", title="bad", chart="bars",
                categories=["a", "b"], series={"s": [1.0]},
            )


# ---------------------------------------------------------------------- #
# Text rendering
# ---------------------------------------------------------------------- #
class TestTextCharts:
    def test_bars_render_labels_values_and_bars(self):
        figure = FigureData(
            slug="x", title="T", chart="bars", categories=["alpha", "beta"],
            series={"Efficiency": [50.0, 100.0]}, y_label="%",
        )
        text = render_text(figure)
        assert "T\n=" in text
        assert "alpha" in text and "beta" in text
        assert "50.00" in text and "100.00" in text
        assert "█" in text

    def test_non_finite_values_render_as_gaps_not_crashes(self):
        bars = FigureData(
            slug="x", title="T", chart="bars", categories=["a", "b", "c"],
            series={"v": [float("nan"), float("inf"), 1.0]},
        )
        text = render_text(bars)
        assert "-" in text and "inf" in text
        lines = FigureData(
            slug="y", title="U", chart="lines", x=[1.0, 2.0],
            series={"v": [float("nan"), 3.0]},
        )
        assert "·" in render_text(lines)

    def test_lines_render_sparkline_and_values(self):
        figure = FigureData(
            slug="x", title="T", chart="lines", x=[0.0, 10.0, 20.0],
            series={"MaxSysEff": [60.0, 61.0, 59.0]}, x_label="level",
        )
        text = render_text(figure)
        assert "x (level): [0, 10, 20]" in text
        assert any(c in text for c in "▁▂▃▄▅▆▇█")


# ---------------------------------------------------------------------- #
# Report building
# ---------------------------------------------------------------------- #
class TestBuildReport:
    def test_html_report_is_self_contained_text_fallback(self, warm_store, tmp_path):
        result = build_report(
            [FIGURE6_SPEC, ANALYSIS_SPEC],
            store=warm_store,
            out_dir=tmp_path,
            formats=("html", "markdown"),
        )
        assert not result.used_matplotlib
        assert [p.name for p in result.report_paths] == ["report.html", "report.md"]
        html = (tmp_path / "report.html").read_text()
        # Self-contained: no external references, charts inline as <pre>.
        assert "src=\"http" not in html and "href=\"http" not in html
        assert html.count('<pre class="chart">') == 6  # 2 + 4 figures
        assert "Figure 6" in html and "Figure 7" in html
        # Metadata + store statistics are part of the artifact.
        assert "result store" in html and "hit rate 100.0%" in html
        md = (tmp_path / "report.md").read_text()
        assert "## figure6-10large-20" in md
        assert "```text" in md

    def test_report_build_over_warm_store_does_no_simulation(
        self, warm_store, tmp_path
    ):
        result = build_report(
            [FIGURE6_SPEC], store=warm_store, out_dir=tmp_path
        )
        stats = result.sections[0].result.store_stats
        assert stats["misses"] == 0 and stats["hit_rate"] == 1.0

    def test_stub_png_backend_embeds_images(self, warm_store, tmp_path, monkeypatch):
        """The matplotlib code path, minus matplotlib: wiring only."""
        def fake_render_png(figure, path):
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(b"\x89PNG fake")
            return path

        monkeypatch.setattr(build_module, "matplotlib_available", lambda: True)
        monkeypatch.setattr(build_module, "render_png", fake_render_png)
        result = build_report(
            [FIGURE6_SPEC], store=warm_store, out_dir=tmp_path,
            formats=("html", "markdown"),
        )
        assert result.used_matplotlib
        assert len(result.figure_paths) == 2
        assert all(p.exists() for p in result.figure_paths)
        html = (tmp_path / "report.html").read_text()
        assert "data:image/png;base64," in html
        assert '<pre class="chart">' not in html

    def test_real_matplotlib_png_rendering(self, warm_store, tmp_path, monkeypatch):
        pytest.importorskip("matplotlib")
        monkeypatch.delenv("REPRO_FORCE_TEXT_CHARTS")
        assert matplotlib_available()
        result = build_report([FIGURE6_SPEC], store=warm_store, out_dir=tmp_path)
        assert result.used_matplotlib
        for path in result.figure_paths:
            assert path.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"

    def test_force_text_flag_beats_available_matplotlib(
        self, warm_store, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(build_module, "matplotlib_available", lambda: True)
        result = build_report(
            [FIGURE6_SPEC], store=warm_store, out_dir=tmp_path, force_text=True
        )
        assert not result.used_matplotlib
        assert result.figure_paths == []

    def test_bad_arguments_are_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            build_report([], out_dir=tmp_path)
        with pytest.raises(ValidationError):
            build_report([FIGURE6_SPEC], out_dir=tmp_path, formats=("pdf",))


# ---------------------------------------------------------------------- #
# CLI surface
# ---------------------------------------------------------------------- #
class TestReportCli:
    def test_repro_report_end_to_end(self, tmp_path, capsys):
        store = tmp_path / "store"
        out_dir = tmp_path / "out"
        rc = main([
            "report", str(FIGURE6_SPEC), str(ANALYSIS_SPEC),
            "--store", str(store), "--out-dir", str(out_dir),
            "--format", "both",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "rendered figure6-10large-20" in captured.out
        assert (out_dir / "report.html").exists()
        assert (out_dir / "report.md").exists()

    def test_report_requires_spec_paths(self, capsys):
        assert main(["report"]) == 2
        assert "at least one spec" in capsys.readouterr().err

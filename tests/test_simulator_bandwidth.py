"""Unit tests for the bandwidth allocation primitives and interference model."""

from __future__ import annotations

import math

import pytest

from repro.simulator.bandwidth import fair_share, favor_in_order, single_application_rate
from repro.simulator.interface import ApplicationPhase, ApplicationView
from repro.simulator.interference import (
    DEFAULT_INTERFERENCE,
    NO_INTERFERENCE,
    InterferenceModel,
)
from repro.utils.validation import ValidationError


def view(name: str, processors: int, phase=ApplicationPhase.IO_PENDING, **kwargs):
    defaults = dict(
        name=name,
        processors=processors,
        phase=phase,
        remaining_io_volume=1e9,
        io_started=False,
        achieved_efficiency=0.5,
        optimal_efficiency=0.9,
        last_io_end=-math.inf,
        io_request_time=0.0,
        instance_index=0,
        n_instances=3,
        total_io_transferred=0.0,
    )
    defaults.update(kwargs)
    return ApplicationView(**defaults)


B = 2e7  # back-end
b = 1e6  # per node


class TestSingleApplicationRate:
    def test_node_limited(self):
        assert single_application_rate(view("a", 5), b, B) == pytest.approx(b)

    def test_system_limited(self):
        assert single_application_rate(view("a", 100), b, B) == pytest.approx(B / 100)

    def test_no_bandwidth(self):
        assert single_application_rate(view("a", 5), b, 0.0) == 0.0


class TestFavorInOrder:
    def test_first_gets_min_beta_b_or_all(self):
        ordered = [view("a", 10), view("b", 10)]
        alloc = favor_in_order(ordered, b, B)
        # a gets 10 * 1e6 = 1e7, b gets the remaining 1e7
        assert alloc.gamma("a") == pytest.approx(b)
        assert alloc.gamma("b") == pytest.approx(b)

    def test_big_first_app_takes_everything(self):
        ordered = [view("big", 100), view("small", 10)]
        alloc = favor_in_order(ordered, b, B)
        assert alloc.gamma("big") == pytest.approx(B / 100)
        assert alloc.gamma("small") == 0.0

    def test_leftover_goes_down_the_list(self):
        ordered = [view("a", 15), view("b", 15)]
        alloc = favor_in_order(ordered, b, B)
        assert alloc.gamma("a") == pytest.approx(b)
        # remaining = 2e7 - 1.5e7 = 5e6 over 15 procs
        assert alloc.gamma("b") == pytest.approx(5e6 / 15)

    def test_total_never_exceeds_capacity(self):
        ordered = [view(f"x{i}", 7) for i in range(10)]
        alloc = favor_in_order(ordered, b, B)
        total = sum(alloc.gamma(f"x{i}") * 7 for i in range(10))
        assert total <= B * (1 + 1e-9)

    def test_zero_capacity(self):
        assert len(favor_in_order([view("a", 4)], b, 0.0)) == 0

    def test_non_candidate_rejected(self):
        with pytest.raises(ValidationError):
            favor_in_order([view("a", 4, phase=ApplicationPhase.COMPUTING)], b, B)

    def test_empty_order(self):
        assert len(favor_in_order([], b, B)) == 0


class TestFairShare:
    def test_no_congestion_everyone_at_node_cap(self):
        alloc = fair_share([view("a", 5), view("b", 5)], b, B)
        assert alloc.gamma("a") == pytest.approx(b)
        assert alloc.gamma("b") == pytest.approx(b)

    def test_congestion_shares_proportionally(self):
        # Demand 3e7 > B = 2e7: equal per-processor share of 2e7/30
        alloc = fair_share([view("a", 15), view("b", 15)], b, B)
        assert alloc.gamma("a") == pytest.approx(2e7 / 30)
        assert alloc.gamma("a") == alloc.gamma("b")

    def test_unequal_sizes_get_equal_per_processor_share(self):
        # Demand (102 MB/s) far exceeds B: every processor gets the same
        # share regardless of which application it belongs to.
        alloc = fair_share([view("a", 2), view("big", 100)], b, B)
        assert alloc.gamma("a") == pytest.approx(B / 102)
        assert alloc.gamma("big") == pytest.approx(B / 102)
        total = 2 * alloc.gamma("a") + 100 * alloc.gamma("big")
        assert total == pytest.approx(B)

    def test_total_conserved_under_congestion(self):
        views = [view(f"x{i}", 13) for i in range(7)]
        alloc = fair_share(views, b, B)
        total = sum(alloc.gamma(v.name) * v.processors for v in views)
        assert total == pytest.approx(B)

    def test_ignores_non_candidates(self):
        views = [view("a", 5), view("c", 5, phase=ApplicationPhase.COMPUTING)]
        alloc = fair_share(views, b, B)
        assert "c" not in alloc

    def test_empty(self):
        assert len(fair_share([], b, B)) == 0


class TestInterferenceModel:
    def test_single_stream_untouched(self):
        assert DEFAULT_INTERFERENCE.factor(1) == 1.0
        assert DEFAULT_INTERFERENCE.factor(0) == 1.0

    def test_monotone_decreasing(self):
        factors = [DEFAULT_INTERFERENCE.factor(k) for k in range(1, 20)]
        assert all(f1 >= f2 for f1, f2 in zip(factors, factors[1:]))

    def test_floor_respected(self):
        assert DEFAULT_INTERFERENCE.factor(10_000) >= DEFAULT_INTERFERENCE.floor

    def test_no_interference_model(self):
        assert NO_INTERFERENCE.factor(50) == pytest.approx(1.0, abs=1e-6)

    def test_effective_bandwidth(self):
        model = InterferenceModel(strength=1.0, floor=0.5)
        assert model.effective_bandwidth(100.0, 2) == pytest.approx(75.0)

    def test_bad_parameters(self):
        with pytest.raises(ValidationError):
            InterferenceModel(strength=0.0, floor=0.5)
        with pytest.raises(ValidationError):
            InterferenceModel(strength=1.0, floor=1.5)

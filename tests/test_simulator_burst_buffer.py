"""Unit tests for the burst-buffer state machine."""

from __future__ import annotations

import pytest

from repro.core.platform import BurstBufferSpec
from repro.simulator.burst_buffer import BurstBufferState
from repro.utils.validation import ValidationError


@pytest.fixture
def spec():
    return BurstBufferSpec(capacity=1000.0, ingest_bandwidth=100.0, drain_bandwidth=10.0)


class TestBurstBufferState:
    def test_initially_empty(self, spec):
        bb = BurstBufferState(spec)
        assert bb.is_empty and not bb.is_full
        assert bb.free_space == 1000.0
        assert bb.drain_rate() == 0.0
        assert bb.ingest_capacity() == 100.0

    def test_invalid_initial_level(self, spec):
        with pytest.raises(ValidationError):
            BurstBufferState(spec, level=2000.0)

    def test_advance_fills(self, spec):
        bb = BurstBufferState(spec)
        bb.advance(duration=10.0, ingest_rate=50.0)
        # 500 in, nothing drained during the very first interval (was empty,
        # drain only runs when level > 0), apart from flow-through allowance.
        assert bb.level <= 500.0
        assert bb.total_absorbed == pytest.approx(500.0)

    def test_advance_drains_when_no_ingest(self, spec):
        bb = BurstBufferState(spec, level=100.0)
        bb.advance(duration=5.0, ingest_rate=0.0)
        assert bb.level == pytest.approx(50.0)
        assert bb.total_drained == pytest.approx(50.0)

    def test_level_never_negative(self, spec):
        bb = BurstBufferState(spec, level=10.0)
        bb.advance(duration=100.0, ingest_rate=0.0)
        assert bb.level == 0.0

    def test_level_never_exceeds_capacity(self, spec):
        bb = BurstBufferState(spec)
        bb.advance(duration=1000.0, ingest_rate=100.0)
        assert bb.level <= spec.capacity

    def test_full_state(self, spec):
        bb = BurstBufferState(spec, level=1000.0)
        assert bb.is_full
        assert bb.ingest_capacity() == 0.0
        assert bb.drain_rate() == 10.0

    def test_next_transition_to_full(self, spec):
        bb = BurstBufferState(spec, level=500.0)
        # net fill = 50 - 10 = 40 -> 500 remaining / 40
        assert bb.next_transition(ingest_rate=50.0) == pytest.approx(12.5)

    def test_next_transition_to_empty(self, spec):
        bb = BurstBufferState(spec, level=100.0)
        # net = 5 - 10 = -5 -> 100 / 5 = 20 s
        assert bb.next_transition(ingest_rate=5.0) == pytest.approx(20.0)

    def test_next_transition_pure_drain(self, spec):
        bb = BurstBufferState(spec, level=100.0)
        assert bb.next_transition(ingest_rate=0.0) == pytest.approx(10.0)

    def test_next_transition_steady_state_none(self, spec):
        bb = BurstBufferState(spec, level=100.0)
        assert bb.next_transition(ingest_rate=10.0) is None

    def test_next_transition_empty_idle_none(self, spec):
        bb = BurstBufferState(spec)
        assert bb.next_transition(ingest_rate=0.0) is None

    def test_reset(self, spec):
        bb = BurstBufferState(spec, level=10.0)
        bb.advance(1.0, 50.0)
        bb.reset()
        assert bb.level == 0.0
        assert bb.total_absorbed == 0.0
        assert bb.total_drained == 0.0

    def test_negative_duration_rejected(self, spec):
        with pytest.raises(ValidationError):
            BurstBufferState(spec).advance(-1.0, 0.0)

"""Property-based differential fuzzing of the three simulation engines.

:mod:`repro.simulator.reference` (the seed oracle), :mod:`repro.simulator.
engine` (the indexed heap engine) and :mod:`repro.simulator.batched` (the
columnar numpy engine) all claim to produce *bit-identical* results — not
merely tolerance-level agreement.  These tests put that claim under
hypothesis: random application mixes, schedulers, burst-buffer
configurations and fault tables (brown-out windows, blackouts, crashes)
are generated, run through all three engines, and every comparable output
— per-application records, makespans, fault counters, burst-buffer stats
and full event logs — is asserted exactly equal.

When a case fails, hypothesis shrinks it: the falsifying example printed
by the test is the *minimal* scenario (fewest apps / instances, smallest
times) that still separates the engines, which is exactly the repro one
wants when debugging a kernel divergence.

The suite is skipped wholesale when hypothesis is not installed (the
bench-smoke CI job installs numpy only); `tests/test_engine_equivalence.py`
keeps a deterministic floor of coverage in that case.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.application import Application  # noqa: E402
from repro.core.events import EventLog  # noqa: E402
from repro.core.platform import BurstBufferSpec, Platform  # noqa: E402
from repro.core.scenario import Scenario  # noqa: E402
from repro.faults import BandwidthWindow, CrashEvent, FaultModel  # noqa: E402
from repro.online.registry import make_scheduler  # noqa: E402
from repro.simulator.batched import batched_simulate  # noqa: E402
from repro.simulator.engine import SimulatorConfig, simulate  # noqa: E402
from repro.simulator.reference import reference_simulate  # noqa: E402

#: Every scheduler family the registry can build natively: the four paper
#: heuristics, the gamma-split, Priority variants, the fair-share baseline
#: and a machine baseline (custom scheduler object -> delegation path).
SCHEDULER_NAMES = (
    "RoundRobin",
    "MinDilation",
    "MaxSysEff",
    "FCFS",
    "FairShare",
    "MinMax-0.5",
    "MinMax-0.25",
    "Priority-RoundRobin",
    "Priority-MaxSysEff",
    "Priority-FairShare",
    "Intrepid",
)

#: Shared hypothesis profile: engines triple-run per example, so examples
#: stay small and the deadline is off (wall time varies with the drawn
#: scenario, not with test health).
FUZZ = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #
def _finite_floats(lo: float, hi: float):
    return st.floats(
        min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False
    )


@st.composite
def applications(draw, index: int = 0) -> Application:
    """One randomized application; always has non-zero work or I/O."""
    processors = draw(st.integers(min_value=1, max_value=24))
    work = draw(st.one_of(st.just(0.0), _finite_floats(1.0, 120.0)))
    io_volume = draw(
        st.one_of(st.just(0.0), _finite_floats(1e6, 2e9))
    )
    if work == 0.0 and io_volume == 0.0:
        io_volume = 1e7  # an instance must have non-zero work or I/O
    return Application.periodic(
        name=f"app-{index:02d}",
        processors=processors,
        work=work,
        io_volume=io_volume,
        n_instances=draw(st.integers(min_value=1, max_value=4)),
        release_time=draw(st.one_of(st.just(0.0), _finite_floats(0.0, 150.0))),
    )


@st.composite
def scenarios(draw, *, with_bb: bool = False) -> Scenario:
    """A randomized congested scenario (platform sized to its app mix)."""
    n_apps = draw(st.integers(min_value=1, max_value=8))
    apps = tuple(draw(applications(index=i)) for i in range(n_apps))
    total_processors = sum(app.processors for app in apps)
    congestion = draw(_finite_floats(1.5, 6.0))
    bb = None
    if with_bb:
        bb = BurstBufferSpec(
            capacity=draw(_finite_floats(5e8, 5e9)),
            ingest_bandwidth=draw(_finite_floats(1e8, 1e9)),
            drain_bandwidth=draw(_finite_floats(5e6, 5e7)),
        )
    platform = Platform(
        name="fuzz",
        total_processors=total_processors,
        node_bandwidth=1e6,
        system_bandwidth=total_processors * 1e6 / congestion,
        burst_buffer=bb,
    )
    return Scenario(platform=platform, applications=apps, label="fuzz")


@st.composite
def fault_models(draw, scenario: Scenario) -> FaultModel:
    """A randomized `[faults]` table: brown-outs, blackouts and crashes.

    Windows are laid out left to right (non-overlapping, like sampled PFS
    brown-out traces); factors include exact 0.0 — a full blackout.
    """
    windows: list[BandwidthWindow] = []
    t = 0.0
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        t += draw(_finite_floats(10.0, 200.0))
        duration = draw(_finite_floats(5.0, 120.0))
        factor = draw(st.one_of(st.just(0.0), _finite_floats(0.0, 0.9)))
        windows.append(
            BandwidthWindow(start=t, end=t + duration, factor=factor)
        )
        t += duration
    names = list(scenario.application_names)
    crashes: list[CrashEvent] = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        name = names[draw(st.integers(min_value=0, max_value=len(names) - 1))]
        app = scenario.application(name)
        fraction = draw(_finite_floats(0.0, 1.0))
        crashes.append(
            CrashEvent(
                app_name=name,
                time=draw(_finite_floats(1.0, 600.0)),
                checkpoint_io=fraction * app.instances[0].io_volume,
            )
        )
    return FaultModel(windows=tuple(windows), crashes=tuple(crashes))


@st.composite
def faulted_scenarios(draw, *, with_bb: bool = False) -> Scenario:
    scenario = draw(scenarios(with_bb=with_bb))
    return scenario.with_faults(draw(fault_models(scenario)))


# --------------------------------------------------------------------- #
# the differential assertion
# --------------------------------------------------------------------- #
def _flatten(log: EventLog) -> list[tuple]:
    return [(e.time, e.event_type, e.app_name, e.instance_index) for e in log]


def assert_all_engines_identical(
    scenario: Scenario, scheduler_name: str, config: SimulatorConfig
) -> None:
    """Run reference, heap and batched; assert bit-identical everything."""
    logs = {name: EventLog() for name in ("reference", "heap", "batched")}
    results = {
        "reference": reference_simulate(
            scenario, make_scheduler(scheduler_name), config, logs["reference"]
        ),
        "heap": simulate(
            scenario, make_scheduler(scheduler_name), config, logs["heap"]
        ),
        "batched": batched_simulate(
            scenario, make_scheduler(scheduler_name), config, logs["batched"]
        ),
    }
    oracle = results["reference"]
    oracle_events = _flatten(logs["reference"])
    for engine in ("heap", "batched"):
        result = results[engine]
        assert result.n_events == oracle.n_events, engine
        assert result.makespan == oracle.makespan, engine
        assert result.records == oracle.records, engine
        assert result.fault_stats == oracle.fault_stats, engine
        assert result.burst_buffer == oracle.burst_buffer, engine
        assert _flatten(logs[engine]) == oracle_events, engine


# --------------------------------------------------------------------- #
# properties
# --------------------------------------------------------------------- #
class TestHealthyScenarios:
    @FUZZ
    @given(scenario=scenarios(), scheduler=st.sampled_from(SCHEDULER_NAMES))
    def test_identical_without_faults(self, scenario, scheduler):
        assert_all_engines_identical(
            scenario, scheduler, SimulatorConfig(record_events=True)
        )

    @FUZZ
    @given(
        scenario=scenarios(),
        scheduler=st.sampled_from(SCHEDULER_NAMES),
        max_time=_finite_floats(10.0, 500.0),
    )
    def test_identical_under_truncation(self, scenario, scheduler, max_time):
        assert_all_engines_identical(
            scenario,
            scheduler,
            SimulatorConfig(record_events=True, max_time=max_time),
        )


class TestBurstBufferScenarios:
    @FUZZ
    @given(
        scenario=scenarios(with_bb=True),
        scheduler=st.sampled_from(("MaxSysEff", "RoundRobin", "Intrepid")),
    )
    def test_identical_with_burst_buffer(self, scenario, scheduler):
        assert_all_engines_identical(
            scenario,
            scheduler,
            SimulatorConfig(record_events=True, use_burst_buffer=True),
        )


class TestFaultedScenarios:
    @FUZZ
    @given(
        scenario=faulted_scenarios(),
        scheduler=st.sampled_from(SCHEDULER_NAMES),
    )
    def test_identical_with_faults(self, scenario, scheduler):
        assert_all_engines_identical(
            scenario, scheduler, SimulatorConfig(record_events=True)
        )

    @FUZZ
    @given(
        scenario=faulted_scenarios(with_bb=True),
        scheduler=st.sampled_from(("MaxSysEff", "MinDilation")),
    )
    def test_identical_with_faults_and_burst_buffer(self, scenario, scheduler):
        assert_all_engines_identical(
            scenario,
            scheduler,
            SimulatorConfig(record_events=True, use_burst_buffer=True),
        )

    @FUZZ
    @given(
        scenario=faulted_scenarios(),
        scheduler=st.sampled_from(SCHEDULER_NAMES),
        max_time=_finite_floats(10.0, 500.0),
    )
    def test_identical_with_faults_under_truncation(
        self, scenario, scheduler, max_time
    ):
        assert_all_engines_identical(
            scenario,
            scheduler,
            SimulatorConfig(record_events=True, max_time=max_time),
        )


class TestShrinkerOutput:
    def test_minimal_counterexample_is_reportable(self):
        """The strategies themselves shrink to a one-app scenario.

        This guards the harness's debugging value: if a divergence is ever
        found, hypothesis must be able to walk the scenario down to its
        minimal form — which requires `scenarios()` to produce valid
        scenarios at its shrunken extremes (1 app, 1 instance, zero
        release, smallest volumes).
        """
        # Build the minimal corner by hand instead of via .example() (which
        # hypothesis forbids inside tests): one app, one instance, smallest
        # values the strategies can emit.
        app = Application.periodic(
            name="app-00",
            processors=1,
            work=0.0,
            io_volume=1e7,
            n_instances=1,
            release_time=0.0,
        )
        platform = Platform(
            name="fuzz",
            total_processors=1,
            node_bandwidth=1e6,
            system_bandwidth=1e6 / 1.5,
        )
        scenario = Scenario(platform=platform, applications=(app,), label="fuzz")
        assert_all_engines_identical(
            scenario, "MaxSysEff", SimulatorConfig(record_events=True)
        )

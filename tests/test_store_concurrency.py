"""Process-concurrency and campaign-safety semantics of the result store.

Campaigns (:mod:`repro.campaign`) point many worker *processes* at one
store — or merge many per-worker stores into one — so the store's
single-process guarantees must hold under real multi-process contention:

* concurrent writers racing on overlapping keys never corrupt an entry
  (atomic temp-sibling + ``os.replace`` writes, collision-verified puts);
* a write interrupted between temp-file creation and ``os.replace``
  leaves only an orphan temp sibling, which readers never confuse for an
  entry;
* ``merge_stores`` verifies key collisions byte-for-byte and refuses —
  loudly — to pick a winner between diverging payloads;
* ``gc`` never evicts a cell an active campaign journal still references.
"""

from __future__ import annotations

import json
import multiprocessing
from pathlib import Path

import pytest

from repro.cli import main
from repro.store import (
    ResultStore,
    StoreCollisionError,
    StoreMergeError,
    digest,
    merge_stores,
)

KEYS = [digest("store-concurrency-test", i) for i in range(20)]


def payload_for(key: str) -> dict:
    """Deterministic payload per key — what every honest producer writes."""
    return {"cell": key[:12], "values": [1.5, 2.5], "nested": {"n": len(key)}}


def _hammer_store(root: str, keys: list, barrier) -> None:
    """Worker entry point: put every key, racing the sibling processes."""
    store = ResultStore(root)
    barrier.wait()  # maximize overlap
    for key in keys:
        store.put(key, payload_for(key))


class TestConcurrentWriters:
    def test_overlapping_multiprocess_writers_never_corrupt(self, tmp_path):
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(4)
        workers = [
            ctx.Process(target=_hammer_store, args=(str(tmp_path), KEYS, barrier))
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0  # a collision mismatch would raise
        store = ResultStore(tmp_path)
        for key in KEYS:
            assert store.get(key) == payload_for(key)
        assert store.stats.corrupt == 0
        assert store.info()["entries"] == len(KEYS)

    def test_identical_reput_is_verified_not_rewritten(self, tmp_path):
        store = ResultStore(tmp_path)
        first = store.put(KEYS[0], payload_for(KEYS[0]))
        second = store.put(KEYS[0], payload_for(KEYS[0]))
        assert first == second
        assert store.stats.writes == 1
        assert store.stats.collisions == 1

    def test_diverging_payload_raises_instead_of_picking_a_winner(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEYS[0], payload_for(KEYS[0]))
        with pytest.raises(StoreCollisionError, match="different payload"):
            store.put(KEYS[0], {"rogue": True})
        # The original entry is untouched by the refused write.
        assert store.get(KEYS[0]) == payload_for(KEYS[0])


class TestInterruptedWrites:
    def test_orphan_temp_siblings_are_invisible_to_readers(self, tmp_path):
        # Simulate a writer killed between mkstemp and os.replace: the
        # temp sibling survives but the entry was never (re)placed.
        store = ResultStore(tmp_path)
        store.put(KEYS[0], payload_for(KEYS[0]))
        entry_dir = tmp_path / "v1" / KEYS[0][:2]
        (entry_dir / f".{KEYS[0]}.json.abc123.tmp").write_bytes(b'{"torn')
        ghost_dir = tmp_path / "v1" / KEYS[1][:2]
        ghost_dir.mkdir(parents=True, exist_ok=True)
        (ghost_dir / f".{KEYS[1]}.json.def456.tmp").write_bytes(b"partial")
        fresh = ResultStore(tmp_path)
        assert fresh.get(KEYS[0]) == payload_for(KEYS[0])  # entry intact
        assert fresh.get(KEYS[1]) is None  # never replaced -> plain miss
        assert fresh.stats.corrupt == 0
        assert fresh.info()["entries"] == 1  # temp files are not entries

    def test_corrupt_entry_is_evicted_and_recomputable(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEYS[0], payload_for(KEYS[0]))
        path.write_bytes(b'{"key": "truncated')
        assert store.get(KEYS[0]) is None
        assert store.stats.corrupt == 1
        assert not path.exists()  # evicted, not left to fail forever
        # The recompute-and-reput path is clean.
        assert store.put(KEYS[0], payload_for(KEYS[0])) is not None
        assert store.get(KEYS[0]) == payload_for(KEYS[0])

    def test_entry_under_the_wrong_filename_reads_as_corrupt(self, tmp_path):
        # An entry whose recorded key disagrees with its filename (e.g. a
        # botched manual copy between stores) must not serve the wrong
        # payload.
        store = ResultStore(tmp_path)
        source = store.put(KEYS[0], payload_for(KEYS[0]))
        target_dir = tmp_path / "v1" / KEYS[2][:2]
        target_dir.mkdir(parents=True, exist_ok=True)
        (target_dir / f"{KEYS[2]}.json").write_bytes(source.read_bytes())
        assert store.get(KEYS[2]) is None
        assert store.stats.corrupt == 1


class TestMerge:
    def fill(self, root: Path, keys) -> ResultStore:
        store = ResultStore(root)
        for key in keys:
            store.put(key, payload_for(key))
        return store

    def test_union_of_disjoint_worker_stores(self, tmp_path):
        self.fill(tmp_path / "w0", KEYS[:3])
        self.fill(tmp_path / "w1", KEYS[3:5])
        dest = ResultStore(tmp_path / "main")
        report = merge_stores([tmp_path / "w0", tmp_path / "w1"], dest)
        assert report.copied == 5
        assert report.verified == 0
        assert report.skipped_corrupt == 0
        for key in KEYS[:5]:
            assert dest.get(key) == payload_for(key)

    def test_overlapping_identical_keys_are_verified(self, tmp_path):
        # Two workers raced on the same cell (a re-queued lease): both
        # stores hold it, byte-identically.
        self.fill(tmp_path / "w0", KEYS[:3])
        self.fill(tmp_path / "w1", KEYS[1:4])
        dest = self.fill(tmp_path / "main", KEYS[:1])
        report = merge_stores([tmp_path / "w0", tmp_path / "w1"], dest)
        assert report.copied == 3  # KEYS[1:4] minus overlaps, plus w0's new
        assert report.verified == 3  # KEYS[0] vs dest, KEYS[1:3] vs w0's copies
        assert dest.info()["entries"] == 4

    def test_diverging_payloads_refuse_to_merge(self, tmp_path):
        self.fill(tmp_path / "w0", KEYS[:2])
        rogue = ResultStore(tmp_path / "w1")
        rogue.put(KEYS[0], {"rogue": True})
        dest = ResultStore(tmp_path / "main")
        with pytest.raises(StoreMergeError):
            merge_stores([tmp_path / "w0", tmp_path / "w1"], dest)

    def test_corrupt_source_entries_are_skipped_and_counted(self, tmp_path):
        source = self.fill(tmp_path / "w0", KEYS[:3])
        victim = source._entry_path(KEYS[1])
        victim.write_bytes(b"\x00 not json")
        report = merge_stores([tmp_path / "w0"], ResultStore(tmp_path / "main"))
        assert report.copied == 2
        assert report.skipped_corrupt == 1

    def test_missing_source_root_is_an_empty_store(self, tmp_path):
        # A campaign worker that never landed a cell never created its
        # store directory; merging the glob must not die on that.
        self.fill(tmp_path / "w0", KEYS[:2])
        report = merge_stores(
            [tmp_path / "w0", tmp_path / "never-created"],
            ResultStore(tmp_path / "main"),
        )
        assert report.copied == 2

    def test_cli_merge_and_mismatch_exit_codes(self, tmp_path, capsys):
        self.fill(tmp_path / "w0", KEYS[:3])
        self.fill(tmp_path / "w1", KEYS[2:5])
        rc = main(
            ["store", "merge", str(tmp_path / "w0"), str(tmp_path / "w1"),
             "--store", str(tmp_path / "main")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "5 copied" in out
        assert "1 verified identical" in out
        rogue = ResultStore(tmp_path / "rogue")
        rogue.put(KEYS[0], {"rogue": True})
        assert main(
            ["store", "merge", str(tmp_path / "rogue"),
             "--store", str(tmp_path / "main")]
        ) == 2


class TestGcCampaignProtection:
    def register_campaign(self, store: ResultStore, keys, *, complete=False) -> Path:
        """Fake the coordinator's journal + pointer registration."""
        journal = store.root / "camp" / "journal.jsonl"
        journal.parent.mkdir(parents=True, exist_ok=True)
        records = [
            {"type": "campaign", "id": "cafe0123", "n_cells": len(keys),
             "cells": [{"index": i, "key": k} for i, k in enumerate(keys)]},
        ]
        if complete:
            records.append({"type": "complete", "landed": len(keys)})
        journal.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        )
        store.campaigns_dir.mkdir(parents=True, exist_ok=True)
        pointer = store.campaigns_dir / "cafe0123.journal"
        pointer.write_text(str(journal))
        return pointer

    def test_gc_never_evicts_journal_referenced_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        for key in KEYS[:6]:
            store.put(key, payload_for(key))
        protected = KEYS[:2]
        self.register_campaign(store, protected)
        assert store.protected_keys() == frozenset(protected)
        removed = store.gc(max_entries=0)
        # Everything evictable went; the campaign's cells survived the
        # over-budget trim.
        assert removed == 4
        for key in protected:
            assert store.get(key) == payload_for(key)

    def test_complete_campaign_releases_its_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        for key in KEYS[:2]:
            store.put(key, payload_for(key))
        pointer = self.register_campaign(store, KEYS[:2], complete=True)
        assert store.protected_keys() == frozenset()
        assert not pointer.exists()  # stale pointer lazily cleaned
        assert store.gc(max_entries=0) == 2

    def test_vanished_journal_releases_its_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEYS[0], payload_for(KEYS[0]))
        pointer = self.register_campaign(store, KEYS[:1])
        (store.root / "camp" / "journal.jsonl").unlink()
        assert store.protected_keys() == frozenset()
        assert not pointer.exists()

    def test_cli_gc_respects_protection(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        for key in KEYS[:4]:
            store.put(key, payload_for(key))
        self.register_campaign(store, KEYS[:1])
        rc = main(["store", "gc", "--max-entries", "0",
                   "--store", str(tmp_path)])
        assert rc == 0
        assert "evicted 3" in capsys.readouterr().out
        assert ResultStore(tmp_path).get(KEYS[0]) == payload_for(KEYS[0])

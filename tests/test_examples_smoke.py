"""Anti-rot smoke suite: every bundled spec and example script must run.

The ISSUE 2 tooling satellite: ``examples/specs/*.toml`` are executed at
truncated depth through the config layer, and ``examples/*.py`` run as real
subprocesses with a tiny budget.  A spec or example that stops parsing or
crashes fails CI here instead of rotting silently in the repository.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import load_spec, run_spec

REPO_ROOT = Path(__file__).resolve().parent.parent
SPECS_DIR = REPO_ROOT / "examples" / "specs"
EXAMPLES_DIR = REPO_ROOT / "examples"

#: Simulated-time ceiling applied to every spec in this suite.  Specs ship
#: with laptop-friendly horizons already; this clamps the deeper ones so the
#: whole suite stays test-sized.  It must exceed the latest release time any
#: spec declares (staggered_releases.toml releases a wave at t = 3600 s) —
#: truncating before an application is even released is a spec error.
SMOKE_MAX_TIME = 8000.0

SPEC_FILES = sorted(SPECS_DIR.glob("*.toml")) + sorted(SPECS_DIR.glob("*.json"))

#: argv appended to each example script to shrink its budget where supported.
EXAMPLE_ARGS: dict[str, list[str]] = {
    "congested_moments.py": ["2"],  # n_moments
}

EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_spec_library_is_non_empty():
    """The bundled library must keep covering the documented experiments."""
    names = {path.stem for path in SPEC_FILES}
    assert {
        "figure6", "congested_moments", "vesta", "periodic", "analysis_figures",
    } <= names
    assert len(SPEC_FILES) >= 8


@pytest.mark.parametrize("spec_path", SPEC_FILES, ids=lambda p: p.name)
def test_spec_runs_truncated(spec_path, tmp_path):
    spec = load_spec(spec_path)
    # Clamp depth, run serially, and redirect any configured output into the
    # test sandbox so smoke runs never litter the working tree.  Vesta and
    # periodic experiments reject truncation (overhead-scored complete runs
    # / steady states with no horizon) and are already test-sized.
    overrides = {"workers": 1}
    if spec.kind not in ("vesta", "periodic"):
        overrides["max_time"] = min(spec.max_time, SMOKE_MAX_TIME)
    spec = spec.with_overrides(**overrides)
    result = run_spec(spec)
    assert result.records, f"{spec_path.name} produced no cells"
    assert result.text.strip()
    written = result.write(path=str(tmp_path / f"{spec_path.stem}.json"))
    assert written is not None and written.exists()


@pytest.mark.parametrize("example", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_script_runs(example):
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    proc = subprocess.run(
        [sys.executable, str(example), *EXAMPLE_ARGS.get(example.name, [])],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{example.name} failed (rc={proc.returncode}):\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{example.name} printed nothing"

"""Unit tests for the Section 2.2 objectives."""

from __future__ import annotations

import pytest

from repro.core.objectives import (
    ApplicationOutcome,
    achieved_efficiency,
    application_dilation,
    max_dilation,
    mean_dilation,
    optimal_efficiency,
    summarize,
    system_efficiency,
    system_efficiency_upper_limit,
)
from repro.utils.validation import ValidationError


def outcome(**kwargs) -> ApplicationOutcome:
    defaults = dict(
        name="a",
        processors=10,
        release_time=0.0,
        completion_time=200.0,
        executed_work=100.0,
        dedicated_io_time=50.0,
    )
    defaults.update(kwargs)
    return ApplicationOutcome(**defaults)


class TestOutcomeValidation:
    def test_valid(self):
        assert outcome().elapsed == 200.0

    def test_completion_before_release_rejected(self):
        with pytest.raises(ValidationError):
            outcome(release_time=100.0, completion_time=50.0)

    def test_non_positive_processors_rejected(self):
        with pytest.raises(ValidationError):
            outcome(processors=0)

    def test_negative_work_rejected(self):
        with pytest.raises(ValidationError):
            outcome(executed_work=-1.0)


class TestPerApplication:
    def test_achieved_efficiency(self):
        # 100 s of work over 200 s elapsed.
        assert achieved_efficiency(outcome()) == pytest.approx(0.5)

    def test_optimal_efficiency(self):
        # 100 / (100 + 50)
        assert optimal_efficiency(outcome()) == pytest.approx(2.0 / 3.0)

    def test_dilation_is_ratio(self):
        # (2/3) / (1/2) = 4/3
        assert application_dilation(outcome()) == pytest.approx(4.0 / 3.0)

    def test_no_congestion_dilation_is_one(self):
        o = outcome(completion_time=150.0)  # exactly w + time_io
        assert application_dilation(o) == pytest.approx(1.0)

    def test_zero_elapsed_degenerate(self):
        o = outcome(completion_time=0.0, executed_work=0.0, dedicated_io_time=0.0)
        assert achieved_efficiency(o) == optimal_efficiency(o)
        assert application_dilation(o) == pytest.approx(1.0)

    def test_zero_work_with_io_dilation_infinite_when_stalled(self):
        o = outcome(executed_work=0.0, dedicated_io_time=10.0, completion_time=100.0)
        assert achieved_efficiency(o) == 0.0
        assert optimal_efficiency(o) == 0.0
        assert application_dilation(o) == pytest.approx(1.0)

    def test_pure_compute_application(self):
        o = outcome(dedicated_io_time=0.0, completion_time=100.0)
        assert optimal_efficiency(o) == 1.0
        assert application_dilation(o) == pytest.approx(1.0)


class TestAggregates:
    def make_pair(self):
        a = outcome(name="a", processors=30, executed_work=100.0, completion_time=200.0)
        b = outcome(name="b", processors=70, executed_work=150.0, completion_time=300.0,
                    dedicated_io_time=30.0)
        return [a, b]

    def test_system_efficiency_weighted_by_processors(self):
        outs = self.make_pair()
        expected = (30 * 0.5 + 70 * 0.5) / 100
        assert system_efficiency(outs) == pytest.approx(expected)

    def test_system_efficiency_with_explicit_total(self):
        outs = self.make_pair()
        assert system_efficiency(outs, total_processors=200) == pytest.approx(
            system_efficiency(outs) / 2
        )

    def test_upper_limit_at_least_efficiency(self):
        outs = self.make_pair()
        assert system_efficiency_upper_limit(outs) >= system_efficiency(outs)

    def test_max_and_mean_dilation(self):
        outs = self.make_pair()
        dils = [application_dilation(o) for o in outs]
        assert max_dilation(outs) == pytest.approx(max(dils))
        assert mean_dilation(outs) == pytest.approx(sum(dils) / 2)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            system_efficiency([])
        with pytest.raises(ValidationError):
            max_dilation([])

    def test_summarize_scales_to_percent(self):
        outs = self.make_pair()
        summary = summarize(outs)
        assert summary.system_efficiency == pytest.approx(100 * system_efficiency(outs))
        assert summary.upper_limit == pytest.approx(
            100 * system_efficiency_upper_limit(outs)
        )
        assert summary.dilation == pytest.approx(max_dilation(outs))
        assert set(summary.as_dict()) == {
            "system_efficiency",
            "dilation",
            "upper_limit",
            "mean_dilation",
        }

    def test_dilation_never_below_one_for_valid_runs(self):
        # completion >= release + work + dedicated io  =>  dilation >= 1
        o = outcome(completion_time=151.0)
        assert application_dilation(o) >= 1.0

"""Unit tests for the analysis layer (Figures 1, 5 and 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    FIGURE7_SCHEDULERS,
    derive_streams,
    sensitivity_study,
)
from repro.analysis.throughput import throughput_decrease_study
from repro.analysis.usage import characterize, daily_usage, io_time_percentage
from repro.core.platform import generic
from repro.utils.validation import ValidationError
from repro.workload.categories import Category
from repro.workload.darshan import DarshanRecord, generate_records


class TestThroughputStudy:
    def test_small_study_shape(self):
        study = throughput_decrease_study(
            n_applications=24, applications_per_batch=6, rng=0
        )
        assert study.n_applications >= 20
        assert len(study.histogram) == len(study.bin_edges) - 1
        assert sum(study.histogram) == study.n_applications
        assert 0.0 <= study.mean_decrease <= 100.0
        assert study.max_decrease <= 100.0

    def test_congestion_produces_significant_decreases(self):
        study = throughput_decrease_study(
            n_applications=30, applications_per_batch=6, rng=1
        )
        # The whole point of Figure 1: some applications lose a lot.
        assert study.max_decrease > 30.0
        assert study.fraction_above(10.0) > 0.2

    def test_fraction_above_monotone(self):
        study = throughput_decrease_study(
            n_applications=24, applications_per_batch=6, rng=2
        )
        assert study.fraction_above(20.0) >= study.fraction_above(60.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValidationError):
            throughput_decrease_study(n_applications=0)
        with pytest.raises(ValidationError):
            throughput_decrease_study(n_applications=10, applications_per_batch=1)
        with pytest.raises(ValidationError):
            throughput_decrease_study(n_applications=10, release_spread=-1.0)

    @pytest.mark.parametrize("batch", [2, 3, 4, 6, 10])
    def test_batches_respect_requested_size(self, batch):
        """Regression: applications_per_batch=2 used to yield 3-app batches
        (n_small=max(2, round(1.6))=2 plus n_large=max(1, 0)=1), silently
        inflating the measured application count."""
        n = 2 * batch
        study = throughput_decrease_study(
            n, applications_per_batch=batch, rng=0, release_spread=0.0
        )
        assert study.n_applications == n
        assert study.n_applications_requested == n

    def test_actual_count_reported_honestly(self):
        """Rounding to whole batches is reported, not papered over."""
        study = throughput_decrease_study(
            10, applications_per_batch=6, rng=0, release_spread=0.0
        )
        assert study.n_applications_requested == 10
        # 10/6 rounds to 2 batches of exactly 6 applications each.
        assert study.n_applications == 12
        assert sum(study.histogram) == study.n_applications


class TestUsage:
    @pytest.fixture
    def records(self):
        return generate_records(200, generic(40_960, 1e8, 8.8e10, name="x"), rng=0)

    def test_daily_usage_covers_categories(self, records):
        usage = daily_usage(records)
        assert set(usage) == set(Category)
        assert all(v >= 0 for v in usage.values())

    def test_io_time_percentage_ranges(self, records):
        percentages = io_time_percentage(records)
        for value in percentages.values():
            assert 0.0 <= value < 100.0
        # Small applications spend proportionally more time in I/O than the
        # very large capability jobs (the Figure 5b shape).
        assert percentages[Category.SMALL] >= percentages[Category.VERY_LARGE]

    def test_characterize_bundles_everything(self, records):
        summary = characterize(records)
        assert sum(summary.job_counts.values()) == len(records)
        assert summary.dominant_category() in set(Category)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            daily_usage([])
        with pytest.raises(ValidationError):
            io_time_percentage([])

    def test_manual_records(self):
        records = [
            DarshanRecord("a", 100, 0.0, 3600.0, 360.0, 1e10),
            DarshanRecord("b", 8192, 0.0, 7200.0, 360.0, 1e12),
        ]
        usage = daily_usage(records, duration_days=1.0)
        assert usage[Category.SMALL] == pytest.approx(100.0)
        assert usage[Category.VERY_LARGE] == pytest.approx(8192 * 2.0)
        pct = io_time_percentage(records)
        assert pct[Category.SMALL] == pytest.approx(10.0)
        assert pct[Category.VERY_LARGE] == pytest.approx(5.0)


class TestSensitivityStreams:
    """Regression suite for the correlated-RNG bug.

    ``spawn_rngs(rng, n)`` was called twice with the same integer seed, so
    the perturbation generators replayed the exact streams the mixes were
    generated from; and each repetition's single perturbation generator was
    consumed statefully across sensibility levels.
    """

    def _draws(self, generator: np.random.Generator) -> tuple[float, ...]:
        return tuple(generator.uniform(size=8).tolist())

    def test_perturbation_streams_differ_from_mix_streams(self):
        mix_rngs, perturb_rngs = derive_streams(123, 3, 4)
        mix_draws = {self._draws(r) for r in mix_rngs}
        for level_rngs in perturb_rngs:
            for generator in level_rngs:
                assert self._draws(generator) not in mix_draws

    def test_every_level_and_repetition_gets_its_own_stream(self):
        _, perturb_rngs = derive_streams(7, 3, 4)
        draws = [
            self._draws(generator)
            for level_rngs in perturb_rngs
            for generator in level_rngs
        ]
        assert len(set(draws)) == len(draws) == 12

    def test_streams_are_a_pure_function_of_the_seed(self):
        first = derive_streams(42, 2, 3)
        second = derive_streams(42, 2, 3)
        for a, b in zip(first[0], second[0]):
            assert self._draws(a) == self._draws(b)
        for level_a, level_b in zip(first[1], second[1]):
            for a, b in zip(level_a, level_b):
                assert self._draws(a) == self._draws(b)

    def test_study_deterministic_under_integer_seed(self):
        kwargs = dict(
            schedulers=("MaxSysEff",), n_repetitions=2, rng=11, max_time=4000.0
        )
        a = sensitivity_study((0, 20), **kwargs)
        b = sensitivity_study((0, 20), **kwargs)
        assert a.points == b.points


class TestSensitivity:
    def test_small_sweep_structure(self):
        study = sensitivity_study(
            (0, 20), schedulers=("MaxSysEff",), n_repetitions=2, rng=0
        )
        assert study.sensibilities() == [0.0, 20.0]
        series = study.series("MaxSysEff", "system_efficiency")
        assert len(series) == 2
        assert all(0 < v <= 100 for v in series)

    def test_default_schedulers(self):
        assert set(FIGURE7_SCHEDULERS) == {"MinDilation", "MaxSysEff", "MinMax-0.5"}

    def test_unknown_metric_rejected(self):
        study = sensitivity_study((0,), schedulers=("MaxSysEff",), n_repetitions=1, rng=0)
        with pytest.raises(ValidationError):
            study.series("MaxSysEff", "nonsense")

    def test_sensibility_has_limited_impact(self):
        # The paper's Section 4.3 claim, checked end to end on a small sweep:
        # the objectives move by well under 25% across the 0-30% range.
        study = sensitivity_study(
            (0, 30), schedulers=("MinMax-0.5",), n_repetitions=2, rng=1
        )
        assert study.max_relative_variation("MinMax-0.5", "system_efficiency") < 0.25

    def test_out_of_range_sensibility_rejected(self):
        with pytest.raises(ValidationError):
            sensitivity_study((120,), schedulers=("MaxSysEff",), n_repetitions=1, rng=0)

"""The persistent :class:`ExperimentExecutor` and its determinism contract.

Three concerns:

* **identity** — maps through an executor (serial, pooled, shared-payload,
  reused across calls) return element-for-element what the plain serial
  loop returns, and a pooled ``run_spec`` payload is byte-identical to the
  serial one (the ISSUE 4 acceptance criterion, same contract as
  ``tests/test_config_spec.py``);
* **reuse** — one pool serves many maps; it is spawned lazily and at most
  once, and serial executors never spawn at all;
* **ergonomics** — progress callbacks fire per item in submission order,
  closed executors refuse work.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.analysis.throughput import throughput_decrease_study
from repro.config import load_spec, run_spec
from repro.core.application import Application
from repro.core.platform import Platform
from repro.core.scenario import Scenario
from repro.experiments.runner import (
    ExperimentExecutor,
    SchedulerCase,
    map_parallel,
    run_grid,
)
from repro.utils.validation import ValidationError


def _square(x: int) -> int:
    return x * x


def _scale(shared: int, x: int) -> int:
    return shared * x


def _square_or_die(x: int) -> int:
    # Kills the *worker process* outright (no exception, no cleanup) — the
    # parent sees a BrokenProcessPool.  The serial retry runs in the main
    # process, where parent_process() is None, and succeeds.
    if x == 3 and multiprocessing.parent_process() is not None:
        os._exit(1)
    return x * x


def _scale_or_die(shared: int, x: int) -> int:
    if x == 3 and multiprocessing.parent_process() is not None:
        os._exit(1)
    return shared * x


def _grid_axes() -> tuple[list[Scenario], list[SchedulerCase]]:
    platform = Platform(
        name="executor-test",
        total_processors=100,
        node_bandwidth=1e6,
        system_bandwidth=1e7,
    )
    scenarios = []
    for i in range(3):
        apps = tuple(
            Application.periodic(
                name=f"app{i}{j}",
                processors=20 + 5 * j,
                work=40.0 + 10.0 * i,
                io_volume=3e8 + 1e8 * j,
                n_instances=2,
            )
            for j in range(3)
        )
        scenarios.append(
            Scenario(platform=platform, applications=apps, label=f"s{i}")
        )
    cases = [SchedulerCase(name=n) for n in ("FairShare", "MaxSysEff")]
    return scenarios, cases


class TestExecutorMap:
    def test_serial_inline_without_pool(self):
        with ExperimentExecutor(workers=None) as pool:
            assert pool.n_workers == 1
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
            assert pool._pool is None  # never spawned

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_matches_serial(self, workers):
        items = list(range(17))
        with ExperimentExecutor(workers=workers) as pool:
            assert pool.map(_square, items) == [x * x for x in items]

    def test_shared_payload_serial_and_parallel(self):
        items = list(range(11))
        expected = [3 * x for x in items]
        with ExperimentExecutor(workers=None) as pool:
            assert pool.map(_scale, items, shared=3) == expected
        with ExperimentExecutor(workers=2) as pool:
            assert pool.map(_scale, items, shared=3) == expected

    def test_pool_reused_across_maps(self):
        with ExperimentExecutor(workers=2) as pool:
            assert pool._pool is None
            pool.map(_square, [1, 2, 3, 4])
            first = pool._pool
            assert first is not None
            pool.map(_scale, [5, 6, 7], shared=2)
            assert pool._pool is first

    def test_progress_in_submission_order(self):
        seen: list[tuple[int, int, int]] = []
        with ExperimentExecutor(workers=2) as pool:
            pool.map(
                _square,
                [3, 1, 4, 1, 5],
                progress=lambda i, item, r: seen.append((i, item, r)),
            )
        assert seen == [(0, 3, 9), (1, 1, 1), (2, 4, 16), (3, 1, 1), (4, 5, 25)]

    def test_closed_executor_refuses_work(self):
        pool = ExperimentExecutor(workers=2)
        pool.close()
        with pytest.raises(ValidationError, match="closed"):
            pool.map(_square, [1])

    def test_map_parallel_with_executor_ignores_workers(self):
        with ExperimentExecutor(workers=None) as pool:
            out = map_parallel(_square, [2, 3], workers=4, executor=pool)
        assert out == [4, 9]


class TestWorkerDeath:
    """Satellite 1: a dying worker must not kill the campaign."""

    def test_map_survives_worker_death(self):
        items = list(range(8))
        with ExperimentExecutor(workers=2) as pool:
            out = pool.map(_square_or_die, items)
            # The broken pool was discarded; the results are still complete
            # and in submission order.
            assert out == [x * x for x in items]
            assert pool.stats.worker_deaths >= 1

    def test_poisoned_cell_mid_chunk_is_isolated(self):
        # Regression for the per-cell recovery: item 3 reliably kills any
        # worker process that hosts it, poisoning whatever chunk it rides
        # in.  Recovery must (a) retry the chunk's innocent cells on a
        # fresh pool instead of rerunning the whole chunk serially, (b)
        # run only the poisoned cell inline, and (c) leave a usable pool
        # behind for the cells queued after the poison.  20 items across 2
        # workers yields 8 chunks of 2-3 cells, so the poison has innocent
        # chunk-mates (8 items would chunk 1:1 and sidestep the scenario).
        items = list(range(20))
        with ExperimentExecutor(workers=2) as pool:
            out = pool.map(_square_or_die, items)
            assert out == [x * x for x in items]
            stats = pool.stats
            # The original death, plus the poisoned cell's own retry death.
            assert stats.worker_deaths >= 2
            # Innocent chunk-mates were resubmitted as single cells.
            assert stats.cell_retries >= 1
            # Exactly the poisoned cell fell back to inline execution.
            assert stats.inline_recoveries == 1
            assert stats.as_dict() == {
                "worker_deaths": stats.worker_deaths,
                "cell_retries": stats.cell_retries,
                "inline_recoveries": stats.inline_recoveries,
            }
            # Later maps reuse a healthy pool as if nothing happened.
            assert pool.map(_square, [9, 10]) == [81, 100]

    def test_map_survives_worker_death_with_shared_payload(self):
        items = list(range(8))
        with ExperimentExecutor(workers=2) as pool:
            out = pool.map(_scale_or_die, items, shared=10)
        assert out == [10 * x for x in items]

    def test_progress_still_fires_for_retried_chunks(self):
        seen: list[int] = []
        items = list(range(8))
        with ExperimentExecutor(workers=2) as pool:
            pool.map(
                _square_or_die,
                items,
                progress=lambda i, item, r: seen.append(i),
            )
        assert seen == list(range(len(items)))

    def test_executor_remains_usable_after_pool_death(self):
        with ExperimentExecutor(workers=2) as pool:
            assert pool.map(_square_or_die, [1, 2, 3, 4]) == [1, 4, 9, 16]
            # A later map on the same executor lazily re-spawns a pool.
            assert pool.map(_square, [5, 6]) == [25, 36]

    def test_ordinary_exceptions_still_propagate(self):
        # Only pool death is absorbed — a plain bug in fn must surface.
        with ExperimentExecutor(workers=2) as pool:
            with pytest.raises(Exception, match="(?i)unsupported|str"):
                pool.map(_square, ["not-a-number", 2, 3, 4])


class TestSerialFallback:
    """Satellite 2: tiny maps skip the pool when the cost hint says so."""

    def test_cheap_map_never_spawns_a_pool(self):
        with ExperimentExecutor(workers=4) as pool:
            out = pool.map(_square, [1, 2, 3], cost_hint=1e-6)
            assert out == [1, 4, 9]
            assert pool._pool is None

    def test_expensive_map_still_uses_the_pool(self):
        with ExperimentExecutor(workers=2) as pool:
            out = pool.map(_square, [1, 2, 3], cost_hint=1.0)
            assert out == [1, 4, 9]
            assert pool._pool is not None

    def test_no_hint_preserves_old_behaviour(self):
        with ExperimentExecutor(workers=2) as pool:
            pool.map(_square, [1, 2])
            assert pool._pool is not None

    def test_grid_cost_hint_scales_with_scenario_size(self):
        from repro.experiments.runner import _grid_cost_hint

        scenarios, _cases = _grid_axes()
        small = _grid_cost_hint(scenarios)
        assert small > 0.0
        # The bundled BENCH grid regression shape: scale-1 scenarios must
        # fall under the fallback threshold at any worker count.
        from repro.experiments.runner import _SERIAL_FALLBACK_SECONDS

        assert small * len(scenarios) * 2 < _SERIAL_FALLBACK_SECONDS


class TestGridThroughExecutor:
    def test_run_grid_identical_serial_vs_pooled_executor(self):
        scenarios, cases = _grid_axes()
        serial = run_grid(scenarios, cases)
        with ExperimentExecutor(workers=2) as pool:
            pooled = run_grid(scenarios, cases, executor=pool)
            again = run_grid(scenarios, cases, executor=pool)  # pool reuse
        assert pooled.cases == serial.cases
        assert again.cases == serial.cases

    def test_throughput_study_identical_serial_vs_pooled(self):
        kwargs = dict(applications_per_batch=4, release_spread=0.2, rng=7)
        serial = throughput_decrease_study(8, **kwargs)
        with ExperimentExecutor(workers=2) as pool:
            pooled = throughput_decrease_study(8, executor=pool, **kwargs)
        assert pooled == serial


class TestSpecRunsByteIdentical:
    """Pooled end-to-end spec runs == serial ones, byte for byte."""

    @pytest.mark.parametrize(
        "spec_path",
        [
            "examples/specs/analysis_figures.toml",
            "examples/specs/periodic.toml",
        ],
    )
    def test_bundled_spec_pooled_identical(self, spec_path):
        spec = load_spec(spec_path)
        serial = run_spec(spec)
        pooled = run_spec(spec.with_overrides(workers=2))
        assert json.dumps(pooled.payload, sort_keys=True) == json.dumps(
            serial.payload, sort_keys=True
        )
        assert pooled.records == serial.records
        assert pooled.text == serial.text

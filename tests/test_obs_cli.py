"""CLI surface of the telemetry layer: ``--trace``/``--metrics``/
``--profile``/``--webhook`` on ``repro run`` and ``repro campaign``.

Covers the PR's acceptance criteria: the trace is a valid Chrome trace
document containing spans for the build stage, at least one grid cell and
at least one store access; ``campaign status`` reports per-worker
heartbeat age and throughput; and every artefact stays well-formed when a
worker is killed mid-campaign (the sinks flush in ``finally``).
"""

from __future__ import annotations

import json
import tomllib
from pathlib import Path

import pytest

from repro.campaign.worker import CHAOS_ENV
from repro.cli import main
from repro.obs.schema import (
    validate_metrics_file,
    validate_trace_file,
    validate_webhook_file,
)

TINY_GRID = """
[experiment]
name = "tiny"
kind = "grid"
seed = 5
max_time = 500.0

[platform]
preset = "generic"
processors = 100
node_bandwidth = 1.0e6
system_bandwidth = 2.0e7

[[scenarios]]
kind = "mix"
small = 3
io_ratio = 0.2

[[scenarios]]
kind = "mix"
small = 2
io_ratio = 0.4

[schedulers]
names = ["FairShare", "MaxSysEff"]
"""

N_CELLS = 4  # 2 scenarios x 2 schedulers


@pytest.fixture
def tiny_spec(tmp_path) -> Path:
    path = tmp_path / "tiny.toml"
    path.write_text(TINY_GRID)
    return path


def span_names(trace_path: Path) -> set[str]:
    document = json.loads(trace_path.read_text())
    return {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}


class TestRunObsFlags:
    def test_trace_covers_build_cells_and_store(self, tiny_spec, tmp_path):
        trace = tmp_path / "trace.json"
        rc = main(
            ["run", str(tiny_spec), "--quiet",
             "--store", str(tmp_path / "store"), "--trace", str(trace)]
        )
        assert rc == 0
        assert validate_trace_file(trace) == []
        names = span_names(trace)
        # The acceptance criterion: build stage, >=1 cell, >=1 store access.
        assert {"build", "run", "report", "spec", "cell"} <= names
        assert names & {"store.get", "store.put"}

    def test_metrics_jsonl_and_prometheus_sibling(self, tiny_spec, tmp_path):
        metrics = tmp_path / "metrics.jsonl"
        rc = main(
            ["run", str(tiny_spec), "--quiet", "--no-cache",
             "--metrics", str(metrics)]
        )
        assert rc == 0
        assert validate_metrics_file(metrics) == []
        lines = [json.loads(l) for l in metrics.read_text().splitlines()]
        # One snapshot per closed stage plus the final flush.
        assert [l["reason"] for l in lines[-4:]] == [
            "stage:build", "stage:run", "stage:report", "final",
        ]
        prom = Path(f"{metrics}.prom")
        assert "repro_cells_total" in prom.read_text()

    def test_profile_writes_one_pstats_file_per_stage(self, tiny_spec, tmp_path):
        import pstats

        profile_dir = tmp_path / "prof"
        rc = main(
            ["run", str(tiny_spec), "--quiet", "--no-cache",
             "--profile", str(profile_dir)]
        )
        assert rc == 0
        files = sorted(p.name for p in profile_dir.glob("*.prof"))
        assert files == ["00-build.prof", "01-run.prof", "02-report.prof"]
        pstats.Stats(str(profile_dir / "01-run.prof"))  # loadable

    def test_webhook_file_receives_lifecycle_and_progress(
        self, tiny_spec, tmp_path, capsys
    ):
        hook = tmp_path / "progress.jsonl"
        rc = main(
            ["run", str(tiny_spec), "--quiet", "--no-cache", "--progress",
             "--webhook", str(hook)]
        )
        assert rc == 0
        assert validate_webhook_file(hook) == []
        events = [json.loads(l)["event"] for l in hook.read_text().splitlines()]
        assert events[0] == "run-start"
        assert events[-1] == "run-complete"
        assert events.count("progress") == N_CELLS

    def test_telemetry_does_not_change_the_output_payload(
        self, tiny_spec, tmp_path
    ):
        bare = tmp_path / "bare.json"
        observed = tmp_path / "observed.json"
        assert main(["run", str(tiny_spec), "--quiet", "--no-cache",
                     "--out", str(bare)]) == 0
        assert main(["run", str(tiny_spec), "--quiet", "--no-cache",
                     "--out", str(observed),
                     "--trace", str(tmp_path / "t.json"),
                     "--metrics", str(tmp_path / "m.jsonl"),
                     "--profile", str(tmp_path / "prof")]) == 0
        assert observed.read_bytes() == bare.read_bytes()


class TestCampaignObs:
    def test_campaign_artefacts_and_status_worker_rows(
        self, tiny_spec, tmp_path, capsys
    ):
        camp = tmp_path / "camp"
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.jsonl"
        hook = tmp_path / "progress.jsonl"
        rc = main(
            ["campaign", "run", str(tiny_spec), "--workers", "2",
             "--dir", str(camp), "--store", str(tmp_path / "store"),
             "--heartbeat-seconds", "0.02", "--quiet",
             "--trace", str(trace), "--metrics", str(metrics),
             "--webhook", str(hook)]
        )
        assert rc == 0
        assert validate_trace_file(trace) == []
        assert validate_metrics_file(metrics) == []
        assert validate_webhook_file(hook) == []
        events = [json.loads(l)["event"] for l in hook.read_text().splitlines()]
        assert events[0] == "campaign-start"
        assert events[-1] == "campaign-complete"
        assert events.count("cell-landed") == N_CELLS

        capsys.readouterr()
        assert main(["campaign", "status", str(camp), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        workers = status["workers"]
        assert workers, "status must list the campaign's workers"
        for row in workers:
            assert row["heartbeat_age_seconds"] >= 0.0
            assert row["cells_done"] + row["cells_failed"] >= 0
        assert sum(row["cells_done"] for row in workers) == N_CELLS
        assert any(
            row["cells_per_second"] and row["cells_per_second"] > 0.0
            for row in workers
        )

        assert main(["campaign", "status", str(camp)]) == 0
        human = capsys.readouterr().out
        assert "heartbeat" in human and "cells/s" in human

    def test_artefacts_stay_well_formed_when_a_worker_is_killed(
        self, tiny_spec, tmp_path, monkeypatch
    ):
        # Cell 0's first host dies kill -9 style mid-cell.  The campaign
        # retries and completes; every artefact must still parse and
        # validate (the sinks flush in ``finally``, never incrementally
        # trusting a clean exit).
        chaos_path = tmp_path / "chaos.json"
        chaos_path.write_text(json.dumps({"0": {"exit": [1]}}, sort_keys=True))
        monkeypatch.setenv(CHAOS_ENV, str(chaos_path))
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.jsonl"
        hook = tmp_path / "progress.jsonl"
        rc = main(
            ["campaign", "run", str(tiny_spec), "--workers", "2",
             "--dir", str(tmp_path / "camp"),
             "--store", str(tmp_path / "store"),
             "--heartbeat-seconds", "0.02", "--quiet",
             "--trace", str(trace), "--metrics", str(metrics),
             "--webhook", str(hook)]
        )
        assert rc == 0
        assert validate_trace_file(trace) == []
        assert validate_metrics_file(metrics) == []
        assert validate_webhook_file(hook) == []
        events = [json.loads(l)["event"] for l in hook.read_text().splitlines()]
        assert "worker-death" in events
        assert events.count("cell-landed") == N_CELLS

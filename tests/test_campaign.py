"""Unit tests for the campaign building blocks (:mod:`repro.campaign`).

Covers the deterministic pieces in isolation — config validation, the
seeded backoff schedule, journal append/replay semantics, mailbox framing,
and campaign planning/identity — without spawning any worker process.
The process-level fault injection lives in ``tests/test_campaign_chaos.py``.
"""

from __future__ import annotations

import json
import os
import tomllib
from dataclasses import replace

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignJournal,
    backoff_seconds,
    campaign_id_for,
    campaign_status,
    plan_campaign,
    read_journal,
    replay_journal,
)
from repro.campaign.journal import LANDED, LEASED, PENDING, QUARANTINED
from repro.campaign.mailbox import MailboxReader, MailboxWriter
from repro.config import load_spec, parse_spec
from repro.experiments.runner import grid_cell_keys
from repro.utils.validation import ValidationError

TINY_GRID = """
[experiment]
name = "tiny"
kind = "grid"
seed = 5
max_time = 500.0

[platform]
preset = "generic"
processors = 100
node_bandwidth = 1.0e6
system_bandwidth = 2.0e7

[[scenarios]]
kind = "mix"
small = 3
io_ratio = 0.2

[[scenarios]]
kind = "mix"
small = 2
io_ratio = 0.4

[schedulers]
names = ["FairShare", "MaxSysEff"]
"""


@pytest.fixture(scope="module")
def tiny_spec():
    return parse_spec(tomllib.loads(TINY_GRID))


# ---------------------------------------------------------------------- #
# CampaignConfig
# ---------------------------------------------------------------------- #
class TestCampaignConfig:
    def test_defaults_are_valid(self):
        config = CampaignConfig()
        assert config.workers == 2
        assert config.retry_budget == 3

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"workers": 0}, "workers"),
            ({"lease_seconds": 0.0}, "lease_seconds"),
            ({"heartbeat_seconds": -1.0}, "heartbeat_seconds"),
            ({"poll_seconds": float("inf")}, "poll_seconds"),
            ({"heartbeat_seconds": 30.0, "lease_seconds": 30.0}, "heartbeat"),
            ({"retry_budget": 0}, "retry_budget"),
            ({"backoff_base_seconds": -0.1}, "backoff_base_seconds"),
            ({"backoff_factor": 0.5}, "backoff_factor"),
            ({"backoff_max_seconds": 0.1, "backoff_base_seconds": 1.0}, "backoff_max"),
            ({"backoff_jitter": -0.5}, "backoff_jitter"),
            ({"cell_timeout_seconds": 0.0}, "cell_timeout_seconds"),
            ({"cell_timeout_factor": 0.0}, "timeout factor"),
            ({"max_respawns": -1}, "max_respawns"),
            ({"halt_after_landed": 0}, "halt_after_landed"),
        ],
    )
    def test_bad_knobs_fail_before_any_worker_spawns(self, kwargs, match):
        with pytest.raises(ValidationError, match=match):
            CampaignConfig(**kwargs)

    def test_cell_timeout_explicit_wins(self):
        config = CampaignConfig(cell_timeout_seconds=7.5)
        assert config.cell_timeout(1e6) == 7.5

    def test_cell_timeout_derived_from_estimate_with_floor(self):
        config = CampaignConfig(
            cell_timeout_factor=100.0, cell_timeout_floor_seconds=30.0
        )
        # Tiny estimate: the floor dominates.
        assert config.cell_timeout(0.001) == 30.0
        # Big estimate: the scaled estimate dominates.
        assert config.cell_timeout(2.0) == 200.0

    def test_from_dict_round_trips(self):
        config = CampaignConfig(workers=5, lease_seconds=9.0, retry_budget=2)
        assert CampaignConfig.from_dict(config.as_dict()) == config

    def test_from_dict_ignores_unknown_keys(self):
        # Journals written by a newer coordinator may carry extra knobs.
        data = CampaignConfig().as_dict()
        data["knob_from_the_future"] = 42
        assert CampaignConfig.from_dict(data) == CampaignConfig()


# ---------------------------------------------------------------------- #
# Backoff schedule
# ---------------------------------------------------------------------- #
class TestBackoffSeconds:
    def test_deterministic_per_campaign_cell_attempt(self):
        config = CampaignConfig()
        a = backoff_seconds(config, "abc123", 4, 2)
        b = backoff_seconds(config, "abc123", 4, 2)
        assert a == b

    def test_exponential_growth_capped_without_jitter(self):
        config = CampaignConfig(
            backoff_base_seconds=1.0,
            backoff_factor=2.0,
            backoff_max_seconds=5.0,
            backoff_jitter=0.0,
        )
        delays = [backoff_seconds(config, "id", 0, n) for n in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_stays_within_bounds(self):
        config = CampaignConfig(
            backoff_base_seconds=1.0,
            backoff_factor=1.0,
            backoff_max_seconds=1.0,
            backoff_jitter=0.5,
        )
        delays = [backoff_seconds(config, "id", cell, 1) for cell in range(50)]
        assert all(1.0 <= d <= 1.5 for d in delays)
        # Jitter de-synchronizes cells that failed together.
        assert len(set(delays)) > 1

    def test_different_campaigns_draw_different_jitter(self):
        config = CampaignConfig(backoff_jitter=1.0)
        assert backoff_seconds(config, "campaign-a", 0, 1) != backoff_seconds(
            config, "campaign-b", 0, 1
        )


# ---------------------------------------------------------------------- #
# Journal
# ---------------------------------------------------------------------- #
def _header(n_cells: int) -> dict:
    return {
        "type": "campaign",
        "id": "deadbeef",
        "n_cells": n_cells,
        "cells": [{"index": i, "key": "00" * 32} for i in range(n_cells)],
    }


class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.append(_header(2))
            journal.append({"type": "lease", "cell": 0, "attempt": 1, "seq": 1})
        records, corrupt = read_journal(path)
        assert corrupt == 0
        assert [r["type"] for r in records] == ["campaign", "lease"]

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.append({"type": "lease"})

    def test_missing_journal_reads_empty(self, tmp_path):
        assert read_journal(tmp_path / "nope.jsonl") == ([], 0)

    def test_torn_final_line_is_skipped_and_counted(self, tmp_path):
        # The one crash mode the O_APPEND protocol allows: a partial tail.
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.append(_header(1))
            journal.append({"type": "landed", "cell": 0})
        with open(path, "ab") as handle:
            handle.write(b'{"type": "lease", "cel')
        records, corrupt = read_journal(path)
        assert corrupt == 1
        assert [r["type"] for r in records] == ["campaign", "landed"]
        state = replay_journal(records)
        assert state.states == {0: LANDED}

    def test_corrupt_middle_lines_do_not_block_later_records(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.append(_header(1))
        with open(path, "ab") as handle:
            handle.write(b"\x00\xffgarbage\n")  # not UTF-8
            handle.write(b"[1, 2, 3]\n")  # JSON but not an object
            handle.write(b'{"no_type_field": true}\n')  # object, no type
        with CampaignJournal(path) as journal:
            journal.append({"type": "landed", "cell": 0, "source": "worker"})
        records, corrupt = read_journal(path)
        assert corrupt == 3
        assert replay_journal(records).states == {0: LANDED}

    def test_replay_folds_the_full_cell_lifecycle(self):
        records = [
            _header(4),
            {"type": "resume"},
            {"type": "lease", "cell": 0, "attempt": 1, "seq": 1},
            {"type": "landed", "cell": 0, "source": "worker", "attempt": 1},
            {"type": "landed", "cell": 1, "source": "store"},
            {"type": "lease", "cell": 2, "attempt": 1, "seq": 2},
            {"type": "failed", "cell": 2, "attempt": 1, "kind": "error"},
            {"type": "lease", "cell": 3, "attempt": 1, "seq": 3},
            {"type": "failed", "cell": 3, "attempt": 1, "kind": "timeout"},
            {"type": "quarantined", "cell": 3, "attempts": 3, "error": "boom"},
        ]
        state = replay_journal(records)
        assert state.resumes == 1
        assert not state.complete
        assert state.states == {0: LANDED, 1: LANDED, 2: PENDING, 3: QUARANTINED}
        assert state.landed_source == {0: "worker", 1: "store"}
        assert state.attempts[0] == 1
        assert state.attempts[3] == 3
        assert state.quarantine_errors == {3: "boom"}
        assert state.counts() == {
            PENDING: 1,
            LEASED: 0,
            LANDED: 2,
            QUARANTINED: 1,
        }

    def test_replay_requeue_clears_quarantine(self):
        records = [
            _header(1),
            {"type": "quarantined", "cell": 0, "attempts": 3, "error": "boom"},
            {"type": "requeue", "cell": 0, "reason": "retry-quarantined"},
        ]
        state = replay_journal(records)
        assert state.states == {0: PENDING}
        assert state.quarantine_errors == {}

    def test_replay_leased_cell_stays_leased(self):
        state = replay_journal(
            [_header(1), {"type": "lease", "cell": 0, "attempt": 1, "seq": 1}]
        )
        assert state.states == {0: LEASED}

    def test_replay_ignores_unknown_cells_and_types(self):
        records = [
            _header(1),
            {"type": "landed", "cell": 99},  # never declared by the header
            {"type": "landed", "cell": "junk"},
            {"type": "record-from-the-future", "payload": 1},
            {"type": "worker-respawn", "worker": "w0"},
        ]
        state = replay_journal(records)
        assert state.states == {0: PENDING}

    def test_replay_without_header_yields_empty_state(self):
        state = replay_journal([{"type": "landed", "cell": 0}])
        assert state.header is None
        assert state.states == {}

    def test_complete_record_marks_campaign_finished(self):
        state = replay_journal([_header(1), {"type": "complete", "landed": 1}])
        assert state.complete


# ---------------------------------------------------------------------- #
# Mailboxes
# ---------------------------------------------------------------------- #
class TestMailbox:
    def test_send_poll_round_trip_in_order(self, tmp_path):
        path = tmp_path / "w0.out.jsonl"
        writer = MailboxWriter(path)
        reader = MailboxReader(path)
        writer.send({"type": "ready", "n_cells": 4})
        writer.send({"type": "heartbeat"})
        assert [r["type"] for r in reader.poll()] == ["ready", "heartbeat"]
        assert reader.poll() == []  # exactly-once delivery
        writer.send({"type": "done", "cell": 0})
        assert [r["type"] for r in reader.poll()] == ["done"]
        writer.close()

    def test_partial_line_is_buffered_until_complete(self, tmp_path):
        # A poll racing the writer mid-line must neither lose nor split
        # the record.
        path = tmp_path / "mail.jsonl"
        reader = MailboxReader(path)
        with open(path, "ab") as handle:
            handle.write(b'{"type": "hea')
        assert reader.poll() == []
        with open(path, "ab") as handle:
            handle.write(b'rtbeat"}\n')
        assert reader.poll() == [{"type": "heartbeat"}]
        assert reader.corrupt == 0

    def test_corrupt_complete_lines_are_counted_and_skipped(self, tmp_path):
        path = tmp_path / "mail.jsonl"
        with open(path, "wb") as handle:
            handle.write(b"not json\n")
            handle.write(b"17\n")  # JSON, but not an object
            handle.write(b'{"type": "done"}\n')
        reader = MailboxReader(path)
        assert reader.poll() == [{"type": "done"}]
        assert reader.corrupt == 2

    def test_missing_mailbox_polls_empty(self, tmp_path):
        assert MailboxReader(tmp_path / "ghost.jsonl").poll() == []

    def test_closed_writer_refuses_sends(self, tmp_path):
        writer = MailboxWriter(tmp_path / "mail.jsonl")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.send({"type": "heartbeat"})


# ---------------------------------------------------------------------- #
# Planning and identity
# ---------------------------------------------------------------------- #
class TestPlan:
    def test_plan_matches_the_serial_runner_keys(self, tiny_spec):
        plan = plan_campaign(tiny_spec)
        keys = grid_cell_keys(
            list(plan.scenarios),
            list(plan.cases),
            max_time=tiny_spec.max_time,
            engine=tiny_spec.engine,
        )
        assert len(plan.cells) == len(plan.scenarios) * len(plan.cases) == 4
        for cell in plan.cells:
            assert cell.index == cell.scenario_index * len(plan.cases) + cell.case_index
            assert cell.key == keys[cell.scenario_index][cell.case_index]
            assert cell.estimate_seconds > 0.0
            assert set(cell.as_dict()) == {"index", "key", "scenario", "scheduler"}

    def test_non_grid_specs_are_refused(self):
        spec = load_spec("examples/specs/figure6.toml")
        with pytest.raises(ValidationError, match="shard grid experiments"):
            plan_campaign(spec)

    def test_identity_ignores_workers_and_output(self, tiny_spec):
        base = campaign_id_for(tiny_spec)
        assert campaign_id_for(replace(tiny_spec, workers=8)) == base
        assert campaign_id_for(tiny_spec.with_overrides(seed=None)) == base

    def test_identity_tracks_the_science(self, tiny_spec):
        base = campaign_id_for(tiny_spec)
        assert campaign_id_for(tiny_spec.with_overrides(seed=6)) != base
        assert campaign_id_for(tiny_spec.with_overrides(max_time=100.0)) != base


# ---------------------------------------------------------------------- #
# Status on broken inputs
# ---------------------------------------------------------------------- #
class TestStatusErrors:
    def test_status_without_journal_is_loud(self, tmp_path):
        with pytest.raises(ValidationError, match="no campaign journal"):
            campaign_status(tmp_path / "ghost")

    def test_status_reads_a_headerless_journal(self, tmp_path):
        # A journal whose header line was corrupted: status degrades to
        # zero-knowledge rather than crashing.
        campaign_dir = tmp_path / "camp"
        campaign_dir.mkdir()
        (campaign_dir / "journal.jsonl").write_bytes(b"garbage header\n")
        status = campaign_status(campaign_dir)
        assert status["corrupt_journal_lines"] == 1
        assert status["n_cells"] is None
        assert status["cells"] == []

"""Optimized engine vs seed engine: the timelines must be identical.

The fast engine (:mod:`repro.simulator.engine`) replaces the seed engine's
per-event full scans with an event heap, cached prefix sums and memoized
views.  Those are pure bookkeeping changes — every float handed to the
scheduler and every event time must come out bit-for-bit the same — so these
tests run randomized scenarios through both engines and require identical
makespans, per-application completion times and event counts (the ISSUE's
tolerance of 1e-9 is the allowance; in practice the engines agree exactly).

The scenario matrix crosses: randomized mixes (several seeds), all four
paper heuristics plus Priority variants and the fair-share baseline, with
and without burst buffers, plus the awkward shapes (zero-work instances,
zero-I/O instances, staggered releases, ``max_time`` truncation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.application import Application
from repro.core.platform import BurstBufferSpec, Platform
from repro.core.scenario import Scenario
from repro.faults import BandwidthWindow, CrashEvent, FaultModel
from repro.online.registry import make_scheduler
from repro.simulator.batched import batched_simulate
from repro.simulator.engine import SimulatorConfig, simulate
from repro.simulator.reference import reference_simulate

#: Makespans / completion times must agree to this tolerance (they are
#: expected — and observed — to agree exactly; the tolerance documents the
#: acceptance bound).
TOL = 1e-9

#: The four paper heuristics, two Priority variants, and the fair-share
#: baseline with interference.
SCHEDULERS = (
    "RoundRobin",
    "MinDilation",
    "MaxSysEff",
    "MinMax-0.5",
    "Priority-RoundRobin",
    "Priority-MaxSysEff",
    "Intrepid",
)


def random_scenario(
    seed: int, *, n_apps: int = 12, with_bb: bool = False
) -> Scenario:
    """A randomized congested scenario, deterministic in ``seed``."""
    rng = np.random.default_rng(seed)
    bb = (
        BurstBufferSpec(capacity=2e9, ingest_bandwidth=5e8, drain_bandwidth=2e7)
        if with_bb
        else None
    )
    platform = Platform(
        name=f"equiv-{seed}",
        total_processors=n_apps * 20,
        node_bandwidth=1e6,
        # ~3x oversubscribed when everybody transfers at once.
        system_bandwidth=n_apps * 20 * 1e6 / 3.0,
        burst_buffer=bb,
    )
    apps = []
    for i in range(n_apps):
        procs = int(rng.integers(5, 21))
        apps.append(
            Application.periodic(
                name=f"app-{i:02d}",
                processors=procs,
                work=float(rng.uniform(10.0, 120.0)),
                io_volume=float(rng.uniform(0.2, 2.0)) * 30.0 * procs * 1e6,
                n_instances=int(rng.integers(2, 7)),
                release_time=float(rng.uniform(0.0, 150.0)),
            )
        )
    return Scenario(platform=platform, applications=tuple(apps), label=f"equiv-{seed}")


def assert_equivalent(scenario, scheduler_name, config=None):
    """Run all three engines and compare everything the ISSUE requires.

    The heap engine ("fast") and the batched numpy engine are each checked
    against the seed reference engine; the batched engine is additionally
    held to *exact* equality of the full record set (it claims bit-identity,
    not just tolerance-level agreement).
    """
    config = config or SimulatorConfig()
    seed_engine = reference_simulate(scenario, make_scheduler(scheduler_name), config)
    fast = simulate(scenario, make_scheduler(scheduler_name), config)
    batched = batched_simulate(scenario, make_scheduler(scheduler_name), config)
    for result in (fast, batched):
        assert result.n_events == seed_engine.n_events
        assert result.makespan == pytest.approx(seed_engine.makespan, abs=TOL)
        assert set(result.records) == set(seed_engine.records)
        for name, rec in result.records.items():
            ref_rec = seed_engine.records[name]
            assert rec.completion_time == pytest.approx(
                ref_rec.completion_time, abs=TOL
            ), name
            assert rec.executed_work == pytest.approx(ref_rec.executed_work, abs=TOL)
            assert rec.total_io_transferred == pytest.approx(
                ref_rec.total_io_transferred, abs=TOL
            )
            assert len(rec.instances) == len(ref_rec.instances)
            assert rec.restarts == ref_rec.restarts, name
        assert (result.fault_stats is None) == (seed_engine.fault_stats is None)
        if result.fault_stats is not None:
            assert result.fault_stats == seed_engine.fault_stats
    # Bit-identity, not just tolerance: the batched engine's contract.
    assert batched.records == seed_engine.records
    assert batched.makespan == seed_engine.makespan
    assert batched.burst_buffer == seed_engine.burst_buffer
    return fast, seed_engine


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_all_heuristics_without_burst_buffer(self, seed, scheduler):
        assert_equivalent(random_scenario(seed), scheduler)

    @pytest.mark.parametrize("scheduler", ("Intrepid", "MaxSysEff"))
    @pytest.mark.parametrize("seed", (0, 1))
    def test_with_burst_buffer(self, seed, scheduler):
        scenario = random_scenario(seed, with_bb=True)
        fast, seed_engine = assert_equivalent(
            scenario, scheduler, SimulatorConfig(use_burst_buffer=True)
        )
        assert fast.burst_buffer is not None
        assert fast.burst_buffer.total_absorbed == pytest.approx(
            seed_engine.burst_buffer.total_absorbed, abs=TOL
        )
        assert fast.burst_buffer.time_full == pytest.approx(
            seed_engine.burst_buffer.time_full, abs=TOL
        )


class TestAwkwardShapes:
    def make_platform(self) -> Platform:
        return Platform(
            name="awkward",
            total_processors=100,
            node_bandwidth=1e6,
            system_bandwidth=2e7,
        )

    def test_zero_work_and_zero_io_instances(self):
        # Pure-I/O and pure-compute instances exercise the immediate
        # transition chains (release -> compute done -> I/O done at one
        # instant), the paths where stale heap entries could bite.
        apps = (
            Application.from_sequences(
                "chain", 20, works=[0.0, 50.0, 0.0], io_volumes=[1e8, 0.0, 5e7]
            ),
            Application.periodic("steady", 30, work=40.0, io_volume=2e8, n_instances=3),
            Application.periodic(
                "cpu-only", 10, work=25.0, io_volume=0.0, n_instances=4
            ),
        )
        scenario = Scenario(platform=self.make_platform(), applications=apps)
        for scheduler in ("MaxSysEff", "RoundRobin"):
            assert_equivalent(scenario, scheduler)

    def test_simultaneous_releases_and_ties(self):
        # Identical applications released at the same instant: every event
        # is a tie, so any ordering slip between the engines would surface.
        apps = tuple(
            Application.periodic(f"tied-{i}", 20, work=30.0, io_volume=3e8, n_instances=3)
            for i in range(4)
        )
        scenario = Scenario(platform=self.make_platform(), applications=apps)
        for scheduler in ("RoundRobin", "MinDilation"):
            assert_equivalent(scenario, scheduler)

    @pytest.mark.parametrize("max_time", (100.0, 333.3, 1000.0))
    def test_max_time_truncation(self, max_time):
        scenario = random_scenario(4)
        assert_equivalent(scenario, "MaxSysEff", SimulatorConfig(max_time=max_time))

    def test_event_logs_serialize_identically(self):
        from repro.core.events import EventLog

        scenario = random_scenario(5, n_apps=6)
        config = SimulatorConfig(record_events=True)
        fast_log, seed_log, batched_log = EventLog(), EventLog(), EventLog()
        simulate(scenario, make_scheduler("MaxSysEff"), config, fast_log)
        reference_simulate(scenario, make_scheduler("MaxSysEff"), config, seed_log)
        batched_simulate(scenario, make_scheduler("MaxSysEff"), config, batched_log)

        def flatten(log):
            return [
                (e.time, e.event_type, e.app_name, e.instance_index) for e in log
            ]

        assert flatten(fast_log) == flatten(seed_log)
        assert flatten(batched_log) == flatten(seed_log)


def random_fault_model(
    seed: int,
    scenario: Scenario,
    *,
    with_windows: bool = True,
    with_crashes: bool = True,
    with_blackout: bool = False,
) -> FaultModel:
    """A randomized (but seed-deterministic) fault model for ``scenario``."""
    rng = np.random.default_rng(1000 + seed)
    windows: list[BandwidthWindow] = []
    if with_windows:
        t = 0.0
        for _ in range(4):
            t += float(rng.uniform(30.0, 200.0))
            duration = float(rng.uniform(20.0, 120.0))
            windows.append(
                BandwidthWindow(
                    start=t,
                    end=t + duration,
                    factor=float(rng.uniform(0.0, 0.8)),
                )
            )
            t += duration
    if with_blackout:
        windows.append(BandwidthWindow(start=250.0, end=320.0, factor=0.0))
    crashes: list[CrashEvent] = []
    if with_crashes:
        names = list(scenario.application_names)
        for _ in range(5):
            name = names[int(rng.integers(0, len(names)))]
            app = scenario.application(name)
            crashes.append(
                CrashEvent(
                    app_name=name,
                    time=float(rng.uniform(10.0, 800.0)),
                    checkpoint_io=float(rng.uniform(0.0, 1.0))
                    * app.instances[0].io_volume,
                )
            )
    return FaultModel(windows=tuple(windows), crashes=tuple(crashes))


class TestFaultedEquivalence:
    """Tentpole acceptance: equivalence extends to faulted scenarios.

    Degradation windows (brown-outs and full blackouts), crash/restart
    cycles and their combination must leave the two engines bit-for-bit
    identical — including the new resilience counters and the APP_CRASH /
    APP_RESTART events.
    """

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("seed", (0, 1))
    def test_all_heuristics_with_faults(self, seed, scheduler):
        scenario = random_scenario(seed)
        faulted = scenario.with_faults(random_fault_model(seed, scenario))
        fast, _ = assert_equivalent(faulted, scheduler)
        assert fast.fault_stats is not None

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_degradation_windows_only(self, seed):
        scenario = random_scenario(seed)
        faulted = scenario.with_faults(
            random_fault_model(seed, scenario, with_crashes=False,
                               with_blackout=True)
        )
        fast, _ = assert_equivalent(faulted, "MaxSysEff")
        assert fast.fault_stats.n_crashes == 0
        assert fast.fault_stats.blackout_time > 0.0
        assert fast.fault_stats.brownout_time >= fast.fault_stats.blackout_time

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_crashes_only(self, seed):
        scenario = random_scenario(seed)
        faulted = scenario.with_faults(
            random_fault_model(seed, scenario, with_windows=False)
        )
        fast, _ = assert_equivalent(faulted, "MinDilation")
        assert fast.fault_stats.brownout_time == 0.0
        total_restarts = sum(
            rec.restarts for rec in fast.records.values()
        )
        assert total_restarts == fast.fault_stats.n_crashes

    def test_zero_checkpoint_crash(self):
        # A crash with no checkpoint to re-read restarts the instance at the
        # crash instant — the chain the fast engine must fire without a full
        # sweep backing it up.
        scenario = random_scenario(3, n_apps=6)
        faulted = scenario.with_faults(
            FaultModel(
                crashes=(
                    CrashEvent(app_name="app-00", time=40.0, checkpoint_io=0.0),
                    CrashEvent(app_name="app-03", time=40.0, checkpoint_io=0.0),
                )
            )
        )
        assert_equivalent(faulted, "MaxSysEff")

    def test_repeated_crashes_same_app(self):
        # Crash during recovery: the checkpoint re-read restarts from zero.
        scenario = random_scenario(6, n_apps=6)
        app = scenario.applications[0]
        faulted = scenario.with_faults(
            FaultModel(
                crashes=tuple(
                    CrashEvent(
                        app_name=app.name,
                        time=50.0 + 30.0 * k,
                        checkpoint_io=app.instances[0].io_volume,
                    )
                    for k in range(4)
                )
            )
        )
        fast, _ = assert_equivalent(faulted, "RoundRobin")
        assert fast.records[app.name].restarts > 0

    @pytest.mark.parametrize("max_time", (100.0, 333.3, 1000.0))
    def test_faulted_max_time_truncation(self, max_time):
        scenario = random_scenario(4)
        faulted = scenario.with_faults(
            random_fault_model(4, scenario, with_blackout=True)
        )
        assert_equivalent(
            faulted, "MaxSysEff", SimulatorConfig(max_time=max_time)
        )

    @pytest.mark.parametrize("scheduler", ("Intrepid", "MaxSysEff"))
    def test_faulted_with_burst_buffer(self, scheduler):
        scenario = random_scenario(1, with_bb=True)
        faulted = scenario.with_faults(random_fault_model(1, scenario))
        fast, seed_engine = assert_equivalent(
            faulted, scheduler, SimulatorConfig(use_burst_buffer=True)
        )
        assert fast.burst_buffer is not None
        assert fast.burst_buffer.total_absorbed == pytest.approx(
            seed_engine.burst_buffer.total_absorbed, abs=TOL
        )

    def test_faulted_event_logs_serialize_identically(self):
        from repro.core.events import EventLog, EventType

        scenario = random_scenario(5, n_apps=6)
        faulted = scenario.with_faults(
            random_fault_model(5, scenario, with_blackout=True)
        )
        config = SimulatorConfig(record_events=True)
        fast_log, seed_log, batched_log = EventLog(), EventLog(), EventLog()
        simulate(faulted, make_scheduler("MaxSysEff"), config, fast_log)
        reference_simulate(
            faulted, make_scheduler("MaxSysEff"), config, seed_log
        )
        batched_simulate(faulted, make_scheduler("MaxSysEff"), config, batched_log)

        def flatten(log):
            return [
                (e.time, e.event_type, e.app_name, e.instance_index) for e in log
            ]

        assert flatten(fast_log) == flatten(seed_log)
        assert flatten(batched_log) == flatten(seed_log)
        crash_events = [e for e in fast_log if e.event_type is EventType.APP_CRASH]
        restart_events = [
            e for e in fast_log if e.event_type is EventType.APP_RESTART
        ]
        assert crash_events
        assert len(restart_events) <= len(crash_events)


class TestAutoDispatch:
    """``engine = "auto"`` picks a kernel by width, bit-identically."""

    def test_dispatch_boundaries(self):
        from repro.experiments.runner import AUTO_DISPATCH_MIN_APPS, dispatch_engine

        assert dispatch_engine("auto", AUTO_DISPATCH_MIN_APPS - 1) == "heap"
        assert dispatch_engine("auto", AUTO_DISPATCH_MIN_APPS) == "batched"
        assert dispatch_engine("auto", 1) == "heap"
        assert dispatch_engine("auto", 500) == "batched"
        # Explicit selectors pass through regardless of width.
        assert dispatch_engine("heap", 500) == "heap"
        assert dispatch_engine("batched", 1) == "batched"
        # None resolves to the default engine, width-independently.
        from repro.experiments.runner import DEFAULT_ENGINE

        assert dispatch_engine(None, 1) == DEFAULT_ENGINE

    def test_unknown_engine_rejected(self):
        from repro.experiments.runner import dispatch_engine
        from repro.utils.validation import ValidationError

        with pytest.raises(ValidationError):
            dispatch_engine("turbo", 10)

    @pytest.mark.parametrize("n_apps", [6, 40])
    def test_auto_bit_identical_to_explicit_engines(self, n_apps):
        """Auto must match heap and batched on both sides of the threshold."""
        from repro.experiments.runner import SchedulerCase, run_case

        scenario = random_scenario(7, n_apps=n_apps)
        case = SchedulerCase(name="MaxSysEff")
        results = {
            engine: run_case(scenario, case, engine=engine)
            for engine in ("heap", "batched", "auto")
        }
        assert results["auto"] == results["heap"]
        assert results["auto"] == results["batched"]

    @pytest.mark.parametrize("n_apps", [6, 40])
    def test_auto_cache_keys_match_dispatched_engine(self, n_apps):
        """An auto cell stores under the key of the kernel that ran it."""
        from repro.experiments.runner import (
            SchedulerCase,
            _GridCellCache,
            dispatch_engine,
        )
        from repro.store import ResultStore

        scenario = random_scenario(11, n_apps=n_apps)
        cases = [SchedulerCase(name="MaxSysEff")]
        store = ResultStore(root="/nonexistent-store")

        def cell_key(engine):
            cache = _GridCellCache(store, [scenario], cases, float("inf"), engine)
            return cache.key((0, 0))

        resolved = dispatch_engine("auto", n_apps)
        assert cell_key("auto") == cell_key(resolved)
        other = "heap" if resolved == "batched" else "batched"
        assert cell_key("auto") != cell_key(other)

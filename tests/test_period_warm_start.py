"""Warm-started period sweep == naive sweep, bit for bit.

The warm start (:mod:`repro.periodic.period_search`) skips a greedy build
whenever the inserter's period-validity bound proves the build cannot
change; these tests assert the contract directly — identical sweep traces,
best periods, placements and scores for both heuristics over a spread of
application sets, step sizes and objectives — and that the warm start
actually skips rebuilds (otherwise it is dead weight).
"""

from __future__ import annotations

import math

import pytest

from repro.core.application import Application
from repro.core.platform import Platform
from repro.periodic.heuristics import (
    InsertInScheduleCong,
    InsertInScheduleThrou,
    application_profiles,
)
from repro.periodic.period_search import search_period
from repro.workload.generator import MixSpec, generate_mix


def _platform() -> Platform:
    return Platform(
        name="warm-start",
        total_processors=400,
        node_bandwidth=1.0e6,
        system_bandwidth=4.0e7,
    )


def _spec_apps() -> list[Application]:
    """The examples/specs/periodic.toml application set."""
    shapes = [
        ("checkpointer", 120, 180.0, 2.4e9, 6),
        ("analytics", 80, 90.0, 1.6e9, 8),
        ("solver", 150, 420.0, 3.0e9, 4),
        ("post-proc", 50, 60.0, 8.0e8, 10),
    ]
    return [
        Application.periodic(
            name=name, processors=procs, work=work, io_volume=vol, n_instances=n
        )
        for name, procs, work, vol, n in shapes
    ]


def _mix_apps(seed: int, n_small: int = 5, n_large: int = 2) -> list[Application]:
    platform = _platform()
    scenario = generate_mix(
        MixSpec(n_small=n_small, n_large=n_large), platform, 0.25, seed,
        label=f"warm-{seed}",
    )
    return list(scenario.applications)


def _placements(schedule) -> list[tuple]:
    return sorted(
        (
            i.app_name,
            i.compute_start,
            i.work,
            i.io_start,
            i.io_duration,
            i.io_bandwidth,
        )
        for i in schedule.instances
    )


HEURISTICS = [InsertInScheduleThrou, InsertInScheduleCong]


class TestWarmStartEquivalence:
    @pytest.mark.parametrize("heuristic_cls", HEURISTICS)
    @pytest.mark.parametrize("objective", ["system_efficiency", "dilation"])
    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.3])
    def test_spec_apps_identical(self, heuristic_cls, objective, epsilon):
        platform = _platform()
        apps = _spec_apps()
        kwargs = dict(
            objective=objective, epsilon=epsilon, max_period_factor=6.0
        )
        warm = search_period(
            heuristic_cls(), platform, apps, warm_start=True, **kwargs
        )
        naive = search_period(
            heuristic_cls(), platform, apps, warm_start=False, **kwargs
        )
        assert warm.sweep == naive.sweep  # exact float equality, per point
        assert warm.best_period == naive.best_period
        assert _placements(warm.best_schedule) == _placements(naive.best_schedule)
        assert warm.best_schedule.summary() == naive.best_schedule.summary()
        assert naive.n_builds == len(naive.sweep)

    @pytest.mark.parametrize("heuristic_cls", HEURISTICS)
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_random_mixes_identical(self, heuristic_cls, seed):
        platform = _platform()
        apps = _mix_apps(seed)
        warm = search_period(
            heuristic_cls(), platform, apps, epsilon=0.1, max_period_factor=8.0
        )
        naive = search_period(
            heuristic_cls(), platform, apps, epsilon=0.1,
            max_period_factor=8.0, warm_start=False,
        )
        assert warm.sweep == naive.sweep
        assert warm.best_period == naive.best_period
        assert _placements(warm.best_schedule) == _placements(naive.best_schedule)

    def test_warm_start_skips_rebuilds(self):
        """A fine sweep must reuse builds across provably identical points.

        Coarse steps (the bundled spec's eps=0.1 jumps ~50 s at a time)
        genuinely change the greedy packing at almost every point, so skips
        concentrate in fine sweeps — the regime whose cost the warm start is
        meant to amortize.
        """
        platform = _platform()
        apps = _spec_apps()
        result = search_period(
            InsertInScheduleThrou(), platform, apps, epsilon=0.005,
            max_period_factor=6.0,
        )
        assert len(result.sweep) > 2
        assert 0 < result.n_builds < len(result.sweep)
        naive = search_period(
            InsertInScheduleThrou(), platform, apps, epsilon=0.005,
            max_period_factor=6.0, warm_start=False,
        )
        assert naive.n_builds == len(naive.sweep)
        assert result.sweep == naive.sweep

    def test_small_sweep_falls_back_to_naive(self):
        """Below ``_WARM_START_MIN_POINTS`` the warm start must step aside.

        Regression test for the BENCH_grid scale-1 period sweep: at ~20
        sweep points the validity bookkeeping cost more than the (zero)
        reuse it bought, so ``warm_start=True`` ran 0.91–0.94x the naive
        sweep.  The adaptive warm start drops to naive rebuilds there —
        builds at every point, bit-identical trace and placements.
        """
        from repro.periodic.period_search import _WARM_START_MIN_POINTS

        platform = _platform()
        apps = _spec_apps()
        # eps=0.1 over a 6x range gives ~20 points — the regressing regime.
        kwargs = dict(epsilon=0.1, max_period_factor=6.0)
        for heuristic_cls in HEURISTICS:
            warm = search_period(
                heuristic_cls(), platform, apps, warm_start=True, **kwargs
            )
            naive = search_period(
                heuristic_cls(), platform, apps, warm_start=False, **kwargs
            )
            assert len(warm.sweep) < _WARM_START_MIN_POINTS
            # The adaptive fallback rebuilds at every point, exactly like
            # the naive sweep it replaced.
            assert warm.n_builds == len(warm.sweep)
            assert warm.sweep == naive.sweep
            assert warm.best_period == naive.best_period
            assert _placements(warm.best_schedule) == _placements(
                naive.best_schedule
            )

    def test_fine_sweep_still_warm_starts(self):
        """Above the threshold the warm start keeps skipping rebuilds."""
        from repro.periodic.period_search import _WARM_START_MIN_POINTS

        platform = _platform()
        apps = _spec_apps()
        result = search_period(
            InsertInScheduleThrou(), platform, apps, epsilon=0.005,
            max_period_factor=6.0,
        )
        assert len(result.sweep) >= _WARM_START_MIN_POINTS
        assert result.n_builds < len(result.sweep)

    def test_single_point_sweep(self):
        platform = _platform()
        apps = _spec_apps()
        from repro.periodic.period_search import minimum_period

        t_min = minimum_period(platform, apps)
        result = search_period(
            InsertInScheduleThrou(), platform, apps, max_period=t_min
        )
        assert len(result.sweep) == 1
        assert result.n_builds == 1
        assert result.best_period == t_min


class TestProfiles:
    def test_profiles_match_direct_computation(self):
        platform = _platform()
        apps = _spec_apps()
        profiles = application_profiles(platform, apps)
        for app in apps:
            inst = app.instances[0]
            peak = platform.peak_application_bandwidth(app.processors)
            profile = profiles[app.name]
            assert profile.work == inst.work
            assert profile.io_volume == inst.io_volume
            assert profile.time_io == inst.io_volume / peak
            assert profile.footprint == inst.work + inst.io_volume / peak
            assert profile.ratio == inst.work / profile.time_io

    def test_zero_io_profile(self):
        platform = _platform()
        app = Application.periodic(
            name="dry", processors=10, work=50.0, io_volume=0.0, n_instances=2
        )
        profiles = application_profiles(platform, [app])
        assert profiles["dry"].time_io == 0.0
        assert math.isinf(profiles["dry"].ratio)
        assert profiles["dry"].footprint == 50.0

"""Unit tests for the online heuristics, Priority wrapper, baselines and registry."""

from __future__ import annotations

import math

import pytest

from repro.core.platform import Platform
from repro.online.base import OnlineScheduler
from repro.online.baselines import FCFS, FairShare, intrepid_scheduler, ior_scheduler
from repro.online.heuristics import MaxSysEff, MinDilation, MinMaxGamma, RoundRobin
from repro.online.priority import Priority
from repro.online.registry import (
    available_schedulers,
    figure6_suite,
    make_scheduler,
    paper_heuristics,
    tables_suite,
)
from repro.simulator.interface import ApplicationPhase, ApplicationView, SystemView
from repro.utils.validation import ValidationError


PLATFORM = Platform("p", 200, 1e6, 2e7)


def view(name, processors, *, achieved=0.5, optimal=0.9, io_started=False,
         last_io_end=-math.inf, request=0.0, phase=ApplicationPhase.IO_PENDING):
    return ApplicationView(
        name=name,
        processors=processors,
        phase=phase,
        remaining_io_volume=1e8,
        io_started=io_started,
        achieved_efficiency=achieved,
        optimal_efficiency=optimal,
        last_io_end=last_io_end,
        io_request_time=request,
        instance_index=1,
        n_instances=5,
        total_io_transferred=0.0,
    )


def system_view(*views, available=2e7):
    return SystemView(
        time=100.0,
        platform=PLATFORM,
        available_bandwidth=available,
        applications=tuple(views),
    )


def ordering(scheduler, sv):
    return [v.name for v in scheduler.order_candidates(sv)]


class TestRoundRobin:
    def test_longest_idle_first(self):
        sv = system_view(
            view("recent", 10, last_io_end=90.0),
            view("old", 10, last_io_end=10.0),
            view("never", 10),
        )
        assert ordering(RoundRobin(), sv) == ["never", "old", "recent"]

    def test_tie_break_by_request_time(self):
        sv = system_view(
            view("late", 10, request=50.0),
            view("early", 10, request=5.0),
        )
        assert ordering(RoundRobin(), sv) == ["early", "late"]


class TestMinDilation:
    def test_most_starved_first(self):
        sv = system_view(
            view("healthy", 10, achieved=0.85, optimal=0.9),
            view("starved", 10, achieved=0.2, optimal=0.9),
        )
        assert ordering(MinDilation(), sv) == ["starved", "healthy"]

    def test_ratio_is_relative_to_optimal(self):
        # Same achieved efficiency, but "io_heavy" has a much lower optimal:
        # its ratio is higher so it is *less* starved.
        sv = system_view(
            view("io_heavy", 10, achieved=0.4, optimal=0.5),
            view("cpu_heavy", 10, achieved=0.4, optimal=0.95),
        )
        assert ordering(MinDilation(), sv) == ["cpu_heavy", "io_heavy"]


class TestMaxSysEff:
    def test_largest_contribution_first(self):
        sv = system_view(
            view("big", 100, achieved=0.8),
            view("small", 10, achieved=0.8),
        )
        assert ordering(MaxSysEff(), sv) == ["big", "small"]

    def test_progress_matters_at_equal_size(self):
        sv = system_view(
            view("productive", 50, achieved=0.9),
            view("stalled", 50, achieved=0.1),
        )
        assert ordering(MaxSysEff(), sv) == ["productive", "stalled"]


class TestMinMaxGamma:
    def test_extremes_match_the_other_heuristics(self):
        sv = system_view(
            view("big", 100, achieved=0.8, optimal=0.9),
            view("small", 10, achieved=0.2, optimal=0.9),
            view("medium", 50, achieved=0.5, optimal=0.9),
        )
        assert ordering(MinMaxGamma(0.0), sv) == ordering(MaxSysEff(), sv)
        assert ordering(MinMaxGamma(1.0), sv) == ordering(MinDilation(), sv)

    def test_threshold_rescues_starved_app(self):
        sv = system_view(
            view("big", 100, achieved=0.8, optimal=0.9),       # ratio 0.89
            view("starved", 10, achieved=0.2, optimal=0.9),    # ratio 0.22
        )
        assert ordering(MinMaxGamma(0.5), sv)[0] == "starved"
        assert ordering(MinMaxGamma(0.1), sv)[0] == "big"

    def test_gamma_validated(self):
        with pytest.raises(ValidationError):
            MinMaxGamma(1.5)
        with pytest.raises(ValidationError):
            MinMaxGamma(-0.1)

    def test_name_contains_gamma(self):
        assert MinMaxGamma(0.25).name == "MinMax-0.25"


class TestTieBreaks:
    """Every heuristic resolves primary-key ties the same way: earlier I/O
    request first, then name (the pair is inlined into each sort key, so a
    slip in any single heuristic would surface here)."""

    SCHEDULERS = (RoundRobin(), MinDilation(), MaxSysEff(), MinMaxGamma(0.5))

    def test_request_time_breaks_ties(self):
        # Identical primary keys, distinct request times.
        late = view("aaa", 10, request=30.0)
        early = view("zzz", 10, request=5.0)
        for scheduler in self.SCHEDULERS:
            assert ordering(scheduler, system_view(late, early)) == ["zzz", "aaa"]

    def test_name_breaks_remaining_ties(self):
        # Identical primary keys and request times: name decides.
        b = view("bbb", 10, request=7.0)
        a = view("aaa", 10, request=7.0)
        for scheduler in self.SCHEDULERS:
            assert ordering(scheduler, system_view(b, a)) == ["aaa", "bbb"]

    def test_missing_request_time_sorts_last(self):
        requested = view("bbb", 10, request=1e9)
        unrequested = view("aaa", 10, request=None)
        for scheduler in self.SCHEDULERS:
            assert ordering(scheduler, system_view(unrequested, requested)) == [
                "bbb",
                "aaa",
            ]


class TestPriority:
    def test_in_flight_transfers_first(self):
        sv = system_view(
            view("fresh_starved", 10, achieved=0.1, optimal=0.9),
            view("inflight", 10, achieved=0.8, optimal=0.9, io_started=True),
        )
        assert ordering(Priority(MinDilation()), sv) == ["inflight", "fresh_starved"]
        # Without the wrapper the starved application would be first.
        assert ordering(MinDilation(), sv) == ["fresh_starved", "inflight"]

    def test_inner_order_preserved_within_groups(self):
        sv = system_view(
            view("a", 10, achieved=0.3, io_started=True),
            view("b", 10, achieved=0.1, io_started=True),
            view("c", 10, achieved=0.2),
            view("d", 10, achieved=0.05),
        )
        assert ordering(Priority(MinDilation()), sv) == ["b", "a", "d", "c"]

    def test_no_nesting(self):
        with pytest.raises(TypeError):
            Priority(Priority(MinDilation()))

    def test_requires_online_scheduler(self):
        with pytest.raises(TypeError):
            Priority("MaxSysEff")

    def test_name(self):
        assert Priority(MaxSysEff()).name == "Priority-MaxSysEff"


class TestAllocationBehaviour:
    def test_allocation_respects_capacity(self):
        sv = system_view(*[view(f"x{i}", 30) for i in range(5)], available=2e7)
        for scheduler in (RoundRobin(), MinDilation(), MaxSysEff(), MinMaxGamma(0.5)):
            alloc = scheduler.allocate(sv)
            total = sum(alloc.gamma(f"x{i}") * 30 for i in range(5))
            assert total <= 2e7 * (1 + 1e-9)

    def test_top_priority_app_gets_full_rate(self):
        sv = system_view(view("big", 100, achieved=0.9), view("small", 10, achieved=0.1))
        alloc = MaxSysEff().allocate(sv)
        assert alloc.gamma("big") * 100 == pytest.approx(2e7)
        assert alloc.gamma("small") == 0.0

    def test_ordering_validation_rejects_duplicates(self):
        class Broken(OnlineScheduler):
            name = "dup"

            def order_candidates(self, v):
                cands = list(v.io_candidates())
                return cands + cands

        with pytest.raises(ValueError):
            Broken().allocate(system_view(view("a", 10)))

    def test_ordering_validation_rejects_non_candidates(self):
        class Broken(OnlineScheduler):
            name = "ghost"

            def order_candidates(self, v):
                return [view("ghost", 10)]

        with pytest.raises(ValueError):
            Broken().allocate(system_view(view("a", 10)))


class TestBaselines:
    def test_fair_share_splits_bandwidth(self):
        sv = system_view(view("a", 15), view("b", 15))
        alloc = FairShare().allocate(sv)
        assert alloc.gamma("a") == pytest.approx(alloc.gamma("b"))

    def test_interference_reduces_total(self):
        sv = system_view(*[view(f"x{i}", 30) for i in range(4)])
        degraded = FairShare().allocate(sv)
        from repro.simulator.interference import NO_INTERFERENCE

        clean = FairShare(interference=NO_INTERFERENCE).allocate(sv)
        total = lambda a: sum(a.gamma(f"x{i}") * 30 for i in range(4))  # noqa: E731
        assert total(degraded) < total(clean)

    def test_single_writer_unaffected_by_interference(self):
        sv = system_view(view("solo", 100))
        alloc = FairShare().allocate(sv)
        assert alloc.gamma("solo") * 100 == pytest.approx(2e7)

    def test_fcfs_orders_by_request_time(self):
        sv = system_view(view("late", 10, request=99.0), view("early", 10, request=1.0))
        assert ordering(FCFS(), sv) == ["early", "late"]

    def test_named_factories(self):
        assert intrepid_scheduler().name == "Intrepid"
        assert ior_scheduler().name == "IOR"


class TestRegistry:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("RoundRobin", RoundRobin),
            ("MinDilation", MinDilation),
            ("MaxSysEff", MaxSysEff),
            ("FairShare", FairShare),
            ("FCFS", FCFS),
            ("minmax-0.5", MinMaxGamma),
        ],
    )
    def test_make_scheduler(self, name, cls):
        assert isinstance(make_scheduler(name), cls)

    def test_priority_prefix(self):
        sched = make_scheduler("Priority-MinMax-0.25")
        assert isinstance(sched, Priority)
        assert isinstance(sched.inner, MinMaxGamma)
        assert sched.inner.gamma == 0.25

    def test_case_insensitive(self):
        assert isinstance(make_scheduler("maxsyseff"), MaxSysEff)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_scheduler("definitely-not-a-scheduler")

    def test_machine_names(self):
        assert make_scheduler("Intrepid").name == "Intrepid"
        assert make_scheduler("Mira").name == "Mira"
        assert make_scheduler("IOR").name == "IOR"

    def test_available_listing(self):
        assert "MaxSysEff" in available_schedulers()

    def test_paper_heuristics_suite(self):
        suite = paper_heuristics(gammas=(0.5,), with_priority=True)
        names = [s.name for s in suite]
        assert "MaxSysEff" in names and "Priority-MaxSysEff" in names
        assert len(names) == 8

    def test_figure6_suite_size(self):
        assert len(figure6_suite()) == 8

    def test_tables_suite(self):
        plain = [s.name for s in tables_suite(priority=False)]
        prio = [s.name for s in tables_suite(priority=True)]
        assert plain[0] == "MaxSysEff" and plain[-1] == "MinDilation"
        assert all(name.startswith("Priority-") for name in prio)

"""Unit tests of the content-addressed result store (:mod:`repro.store`).

Covers the three layers in isolation: canonical serialization (stable keys),
the code fingerprint (change detection), and the on-disk store (atomic
entries, corruption tolerance, eviction).  The end-to-end cache semantics —
"second run of an unchanged spec performs zero simulation work" — live in
``tests/test_store_cache_semantics.py``.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from repro.core.application import Application
from repro.core.platform import intrepid
from repro.core.scenario import Scenario
from repro.store import (
    CanonicalizationError,
    ResultStore,
    canonical_json,
    clear_fingerprint_cache,
    code_fingerprint,
    digest,
)
from repro.utils.validation import ValidationError


def _scenario(label: str = "s") -> Scenario:
    apps = tuple(
        Application.periodic(f"a{i}", 8, 20.0, 1.0e9, 3) for i in range(3)
    )
    return Scenario(platform=intrepid(), applications=apps, label=label)


# ---------------------------------------------------------------------- #
# Canonical serialization
# ---------------------------------------------------------------------- #
class TestCanonical:
    def test_equal_objects_share_canonical_text(self):
        assert canonical_json(_scenario()) == canonical_json(_scenario())

    def test_mapping_key_order_is_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_label_change_changes_canonical_text(self):
        assert canonical_json(_scenario("x")) != canonical_json(_scenario("y"))

    def test_cached_property_memo_does_not_leak_into_key(self):
        """Only declared dataclass fields participate (not __dict__ residue)."""
        fresh = _scenario()
        used = _scenario()
        # Populate Application.cumulative_work memos on one copy only.
        for app in used.applications:
            app.cumulative_work  # noqa: B018 - touch the cached_property
        assert canonical_json(fresh) == canonical_json(used)

    def test_numpy_scalars_and_arrays_collapse_to_python(self):
        assert canonical_json(np.float64(1.5)) == canonical_json(1.5)
        assert canonical_json(np.int64(7)) == canonical_json(7)
        assert canonical_json(np.array([1.0, 2.0])) == canonical_json([1.0, 2.0])

    def test_non_finite_floats_are_stable(self):
        text = canonical_json({"nan": float("nan"), "inf": float("inf")})
        assert text == canonical_json(json.loads(text)) or "NaN" in text

    def test_unstable_values_fail_loudly(self):
        with pytest.raises(CanonicalizationError):
            canonical_json(lambda: None)
        with pytest.raises(CanonicalizationError):
            canonical_json(np.random.default_rng(0))

    def test_digest_respects_part_boundaries(self):
        assert digest("ab", "c") != digest("a", "bc")
        assert digest("x") != digest("x", "")

    def test_digest_never_collides_across_types(self):
        """A raw string part and a value with the same text must differ."""
        assert digest("3") != digest(3)
        assert digest("Infinity") != digest(float("inf"))


# ---------------------------------------------------------------------- #
# Code fingerprint
# ---------------------------------------------------------------------- #
class TestFingerprint:
    def _tree(self, tmp_path, content: str):
        for package in ("core", "simulator"):
            (tmp_path / package).mkdir(exist_ok=True)
            (tmp_path / package / "mod.py").write_text(content)
        return tmp_path

    def test_same_tree_same_fingerprint(self, tmp_path):
        tree = self._tree(tmp_path, "x = 1\n")
        assert code_fingerprint(tree) == code_fingerprint(tree)

    def test_touching_a_module_changes_the_fingerprint(self, tmp_path):
        tree = self._tree(tmp_path, "x = 1\n")
        before = code_fingerprint(tree)
        clear_fingerprint_cache()
        (tree / "core" / "mod.py").write_text("x = 2\n")
        assert code_fingerprint(tree) != before

    def test_salt_changes_the_fingerprint(self, tmp_path, monkeypatch):
        tree = self._tree(tmp_path, "x = 1\n")
        before = code_fingerprint(tree)
        monkeypatch.setenv("REPRO_CACHE_SALT", "different")
        assert code_fingerprint(tree) != before

    def test_real_package_fingerprint_is_memoized(self):
        assert code_fingerprint() == code_fingerprint()


# ---------------------------------------------------------------------- #
# The on-disk store
# ---------------------------------------------------------------------- #
class TestResultStore:
    def _key(self, text: str = "k") -> str:
        return digest(text)

    def test_round_trip_preserves_non_finite_floats(self, tmp_path):
        store = ResultStore(tmp_path)
        key = self._key()
        store.put(key, {"nan": float("nan"), "inf": float("inf"), "v": 1.25})
        got = store.get(key)
        assert math.isnan(got["nan"])
        assert got["inf"] == float("inf")
        assert got["v"] == 1.25
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_numpy_values_are_stored_as_plain_json(self, tmp_path):
        store = ResultStore(tmp_path)
        key = self._key()
        store.put(key, {"v": np.float64(2.5), "n": np.int64(3)})
        assert store.get(key) == {"v": 2.5, "n": 3}

    def test_miss_on_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "never-created")
        assert store.get(self._key()) is None
        assert store.stats.misses == 1
        assert not (tmp_path / "never-created").exists()  # reads don't mkdir

    def test_malformed_key_is_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValidationError):
            store.get("not-a-hex-digest")

    def test_truncated_entry_is_a_miss_and_is_deleted(self, tmp_path):
        store = ResultStore(tmp_path)
        key = self._key()
        path = store.put(key, {"v": 1})
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert not path.exists()
        # And a subsequent put/get works again.
        store.put(key, {"v": 2})
        assert store.get(key) == {"v": 2}

    def test_entry_with_wrong_recorded_key_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key_a, key_b = self._key("a"), self._key("b")
        store.put(key_a, {"v": 1})
        # Simulate a mis-filed entry: copy a's bytes under b's path.
        path_b = store._entry_path(key_b)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_bytes(store._entry_path(key_a).read_bytes())
        assert store.get(key_b) is None
        assert store.stats.corrupt == 1

    def test_writes_leave_no_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(10):
            store.put(self._key(str(i)), {"i": i})
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_atomic_writes_respect_the_umask(self, tmp_path):
        """mkstemp's 0600 must not leak into artefacts/entries (umask rules)."""
        import stat

        from repro.utils.io import atomic_write_text

        old_umask = os.umask(0o022)
        try:
            target = tmp_path / "artifact.json"
            atomic_write_text(target, "{}\n")
            assert stat.S_IMODE(target.stat().st_mode) == 0o644
        finally:
            os.umask(old_umask)

    def test_discard_removes_one_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        key = self._key()
        store.put(key, {"v": 1})
        store.discard(key)
        assert key not in store
        store.discard(key)  # idempotent

    def test_info_counts_entries_and_bytes(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(3):
            store.put(self._key(str(i)), {"i": i})
        info = store.info()
        assert info["entries"] == 3
        assert info["total_bytes"] > 0
        assert info["path"] == str(tmp_path)

    def test_gc_by_age_keeps_recently_touched_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        old_key, new_key = self._key("old"), self._key("new")
        old_path = store.put(old_key, {"v": "old"})
        store.put(new_key, {"v": "new"})
        stale = 10 * 86400.0
        os.utime(old_path, (os.path.getatime(old_path) - stale,
                            os.path.getmtime(old_path) - stale))
        assert store.gc(max_age_days=5) == 1
        assert store.get(old_key) is None
        assert store.get(new_key) == {"v": "new"}

    def test_gc_by_entry_budget_evicts_lru_first(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = [self._key(str(i)) for i in range(4)]
        paths = [store.put(k, {"i": i}) for i, k in enumerate(keys)]
        # Make entry 0 the oldest, 3 the newest.
        now = os.path.getmtime(paths[-1])
        for i, path in enumerate(paths):
            os.utime(path, (now - 100 + i, now - 100 + i))
        assert store.gc(max_entries=2) == 2
        assert store.get(keys[0]) is None and store.get(keys[1]) is None
        assert store.get(keys[2]) is not None and store.get(keys[3]) is not None

    def test_gc_by_bytes_budget(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(4):
            store.put(self._key(str(i)), {"i": i})
        assert store.gc(max_bytes=0) == 4
        assert store.info()["entries"] == 0

    def test_gc_rejects_negative_budgets(self, tmp_path):
        with pytest.raises(ValidationError):
            ResultStore(tmp_path).gc(max_entries=-1)

    def test_clear_removes_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(5):
            store.put(self._key(str(i)), {"i": i})
        assert store.clear() == 5
        assert store.info()["entries"] == 0

    def test_unwritable_store_degrades_instead_of_raising(self, tmp_path, capsys):
        """A campaign must never die on cache bookkeeping (fail-soft puts)."""
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        store = ResultStore(blocker / "store")  # mkdir under a file: OSError
        assert store.put(self._key("a"), {"v": 1}) is None
        assert store.put(self._key("b"), {"v": 2}) is None
        assert store.stats.write_errors == 2 and store.stats.writes == 0
        # Warned once per handle, not once per cell.
        assert capsys.readouterr().err.count("warning") == 1

"""Unit tests for the platform model and the machine presets."""

from __future__ import annotations

import pytest

from repro.core.platform import (
    BurstBufferSpec,
    Platform,
    generic,
    intrepid,
    mira,
    vesta,
)
from repro.utils.validation import ValidationError


class TestBurstBufferSpec:
    def test_valid(self):
        spec = BurstBufferSpec(capacity=1e12, ingest_bandwidth=1e11, drain_bandwidth=1e10)
        assert spec.capacity == 1e12

    @pytest.mark.parametrize("field", ["capacity", "ingest_bandwidth", "drain_bandwidth"])
    def test_non_positive_rejected(self, field):
        kwargs = dict(capacity=1.0, ingest_bandwidth=1.0, drain_bandwidth=1.0)
        kwargs[field] = 0.0
        with pytest.raises(ValidationError):
            BurstBufferSpec(**kwargs)


class TestPlatform:
    def test_valid(self):
        p = Platform("p", 100, 1e6, 1e8)
        assert p.total_processors == 100

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Platform("", 10, 1.0, 1.0)

    def test_zero_processors_rejected(self):
        with pytest.raises(ValidationError):
            Platform("p", 0, 1.0, 1.0)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            Platform("p", 10, 0.0, 1.0)
        with pytest.raises(ValidationError):
            Platform("p", 10, 1.0, -1.0)

    def test_bad_burst_buffer_type(self):
        with pytest.raises(ValidationError):
            Platform("p", 10, 1.0, 1.0, burst_buffer="not a spec")

    def test_peak_application_bandwidth_node_limited(self):
        p = Platform("p", 100, 1e6, 2e7)
        assert p.peak_application_bandwidth(10) == pytest.approx(1e7)

    def test_peak_application_bandwidth_system_limited(self):
        p = Platform("p", 100, 1e6, 2e7)
        assert p.peak_application_bandwidth(50) == pytest.approx(2e7)

    def test_congestion_point(self):
        p = Platform("p", 100, 1e6, 2e7)
        assert p.congestion_point() == pytest.approx(20.0)

    def test_with_and_without_burst_buffer(self):
        spec = BurstBufferSpec(1e9, 1e9, 1e8)
        p = Platform("p", 10, 1.0, 10.0)
        with_bb = p.with_burst_buffer(spec)
        assert with_bb.burst_buffer is spec
        assert with_bb.without_burst_buffer().burst_buffer is None
        # Original untouched (frozen dataclass semantics).
        assert p.burst_buffer is None

    def test_scaled(self):
        p = Platform("p", 1000, 1e6, 1e9)
        half = p.scaled(0.5)
        assert half.total_processors == 500
        assert half.system_bandwidth == pytest.approx(5e8)
        assert half.node_bandwidth == p.node_bandwidth

    def test_scaled_requires_positive_factor(self):
        with pytest.raises(ValidationError):
            Platform("p", 10, 1.0, 1.0).scaled(0.0)


class TestPresets:
    def test_intrepid_shape(self):
        p = intrepid()
        assert p.total_processors == 40_960
        assert p.node_bandwidth == pytest.approx(0.1e9)
        assert p.burst_buffer is None

    def test_intrepid_with_burst_buffer(self):
        p = intrepid(with_burst_buffer=True)
        assert p.burst_buffer is not None
        assert p.burst_buffer.drain_bandwidth <= p.system_bandwidth

    def test_mira_is_bigger_than_intrepid(self):
        assert mira().system_bandwidth > intrepid().system_bandwidth
        assert mira().total_processors > intrepid().total_processors

    def test_vesta_is_small_mira(self):
        v, m = vesta(), mira()
        assert v.node_bandwidth == m.node_bandwidth
        assert v.total_processors == 2_048
        assert v.system_bandwidth < m.system_bandwidth

    def test_all_presets_accept_burst_buffer_flag(self):
        for factory in (intrepid, mira, vesta):
            assert factory(True).burst_buffer is not None
            assert factory(False).burst_buffer is None

    def test_generic(self):
        p = generic(10, 1.0, 5.0, name="tiny")
        assert p.name == "tiny" and p.total_processors == 10

"""Integration tests asserting the paper's qualitative claims end to end.

These are the "does the reproduction reproduce" tests: each one runs a small
version of one of the paper's experiments through the public API and checks
the *shape* of the result (who wins, in which direction), never the absolute
numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.platform import intrepid
from repro.experiments.comparison import (
    congested_moments_experiment,
    figure6_experiment,
)
from repro.experiments.runner import SchedulerCase, run_grid
from repro.experiments.vesta import figure16_per_application_dilation, run_vesta_case
from repro.online.registry import make_scheduler
from repro.simulator.engine import SimulatorConfig, simulate
from repro.workload.congested import intrepid_congested_moments


pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def intrepid_moments():
    """A handful of Intrepid congested moments shared by several tests."""
    return intrepid_congested_moments(4, rng=11)


@pytest.fixture(scope="module")
def moments_grid(intrepid_moments):
    cases = [
        SchedulerCase("MaxSysEff"),
        SchedulerCase("MinDilation"),
        SchedulerCase("MinMax-0.5"),
        SchedulerCase("Priority-MaxSysEff"),
        SchedulerCase("Priority-MinDilation"),
        SchedulerCase("RoundRobin"),
        SchedulerCase("Intrepid"),
        SchedulerCase(
            "Intrepid",
            use_burst_buffer=True,
            burst_buffer_platform=intrepid(with_burst_buffer=True),
            label="Intrepid+BB",
        ),
    ]
    return run_grid(intrepid_moments, cases)


class TestCongestedMomentClaims:
    def test_heuristics_beat_uncoordinated_congestion(self, moments_grid):
        """Core claim: the global scheduler mitigates congestion (Section 4.4)."""
        baseline = moments_grid.mean("Intrepid", "system_efficiency")
        for scheduler in ("MaxSysEff", "MinDilation", "MinMax-0.5"):
            assert moments_grid.mean(scheduler, "system_efficiency") > baseline

    def test_heuristics_reduce_dilation_versus_congestion(self, moments_grid):
        baseline = moments_grid.mean("Intrepid", "dilation")
        assert moments_grid.mean("MinDilation", "dilation") < baseline
        assert moments_grid.mean("MinMax-0.5", "dilation") < baseline

    def test_maxsyseff_among_best_system_efficiency(self, moments_grid):
        """MaxSysEff optimizes the machine-level objective.

        On the full 56-moment campaign MaxSysEff has the best average
        SysEfficiency; on a 4-moment sample the ordering against the other
        coordinated heuristics can wobble by a couple of points, so the test
        asserts it is within a small margin of the best and clearly above
        the uncoordinated baseline and RoundRobin.
        """
        best = moments_grid.mean("MaxSysEff", "system_efficiency")
        for other in ("MinDilation", "MinMax-0.5"):
            assert best >= moments_grid.mean(other, "system_efficiency") - 3.0
        assert best > moments_grid.mean("RoundRobin", "system_efficiency")
        assert best > moments_grid.mean("Intrepid", "system_efficiency")

    def test_mindilation_best_dilation(self, moments_grid):
        """MinDilation optimizes the user-level fairness objective."""
        best = moments_grid.mean("MinDilation", "dilation")
        for other in ("MaxSysEff", "MinMax-0.5", "RoundRobin", "Intrepid"):
            assert best <= moments_grid.mean(other, "dilation") + 1e-9

    def test_minmax_is_a_trade_off(self, moments_grid):
        """MinMax-γ sits between the two extreme heuristics on both objectives."""
        dil = {
            name: moments_grid.mean(name, "dilation")
            for name in ("MaxSysEff", "MinMax-0.5", "MinDilation")
        }
        assert dil["MinDilation"] <= dil["MinMax-0.5"] <= dil["MaxSysEff"]

    def test_priority_variant_costs_little(self, moments_grid):
        """Priority variants stay close to the originals.

        The paper observes the Priority constraint is usually slightly less
        efficient but that "the difference in system efficiency and
        application dilation is small in all studied scenarios"; the test
        asserts exactly that smallness, in both directions.
        """
        for base in ("MaxSysEff", "MinDilation"):
            plain = moments_grid.mean(base, "system_efficiency")
            prio = moments_grid.mean(f"Priority-{base}", "system_efficiency")
            assert abs(prio - plain) <= 0.2 * plain

    def test_heuristics_without_bb_comparable_to_baseline_with_bb(self, moments_grid):
        """The striking result: no burst buffers needed to match the baseline."""
        with_bb = moments_grid.mean("Intrepid+BB", "system_efficiency")
        no_bb_heuristic = moments_grid.mean("MaxSysEff", "system_efficiency")
        assert no_bb_heuristic >= 0.8 * with_bb
        # ... and the heuristic remains far ahead of the baseline without them.
        assert no_bb_heuristic > 1.2 * moments_grid.mean("Intrepid", "system_efficiency")

    def test_upper_limit_bounds_everything(self, moments_grid):
        # The upper limit is defined against the file-system-only model
        # (min(beta*b, B)); burst-buffer runs can legitimately exceed it
        # because the staging layer is faster than the file system, so they
        # are excluded here.
        for scheduler in moments_grid.schedulers():
            if scheduler.endswith("+BB"):
                continue
            eff = np.asarray(moments_grid.series(scheduler, "system_efficiency"))
            upper = np.asarray(moments_grid.series(scheduler, "upper_limit"))
            assert np.all(eff <= upper * (1 + 1e-6))


class TestFigure6Claims:
    @pytest.fixture(scope="class")
    def result(self):
        return figure6_experiment(
            "10large-20",
            n_repetitions=4,
            schedulers=("MaxSysEff", "MinDilation", "MinMax-0.5", "RoundRobin"),
            rng=21,
        )

    def test_maxsyseff_vs_mindilation_trade_off(self, result):
        max_eff = result.averages["MaxSysEff"]
        min_dil = result.averages["MinDilation"]
        assert max_eff.system_efficiency > min_dil.system_efficiency
        assert min_dil.dilation < max_eff.dilation

    def test_minmax_trade_off_position(self, result):
        minmax = result.averages["MinMax-0.5"]
        assert minmax.dilation <= result.averages["MaxSysEff"].dilation + 1e-9
        assert minmax.dilation >= result.averages["MinDilation"].dilation - 1e-9

    def test_round_robin_is_not_the_best(self, result):
        rr = result.averages["RoundRobin"]
        assert rr.system_efficiency <= result.averages["MaxSysEff"].system_efficiency
        assert rr.dilation >= result.averages["MinDilation"].dilation


class TestTableExperiments:
    def test_mira_campaign_shape(self):
        result = congested_moments_experiment(
            "mira",
            n_moments=3,
            schedulers=("MaxSysEff", "MinMax-0.5", "MinDilation"),
            rng=31,
        )
        table = result.table()
        # Dilation decreases monotonically from MaxSysEff to MinDilation.
        assert (
            table["MinDilation"].dilation
            <= table["MinMax-0.5"].dilation
            <= table["MaxSysEff"].dilation
        )
        # The baseline with burst buffers does not dominate the best heuristic.
        assert table["MaxSysEff"].system_efficiency >= 0.9 * table["Mira"].system_efficiency
        assert result.mean_upper_limit() >= table["MaxSysEff"].system_efficiency - 1e-9


class TestVestaClaims:
    def test_heuristics_beat_plain_ior_when_congested(self):
        mix = "512/256/256/32"
        ior = run_vesta_case(mix, "IOR", rng=0)
        maxsyseff = run_vesta_case(mix, "MaxSysEff", rng=0)
        mindil = run_vesta_case(mix, "MinDilation", rng=0)
        assert maxsyseff.summary.system_efficiency > ior.summary.system_efficiency
        assert mindil.summary.dilation < ior.summary.dilation

    def test_heuristics_without_bb_vs_ior_with_bb(self):
        """Section 5's headline: >= 3 applications, no BB needed."""
        mix = "256/256/256/256"
        bb_ior = run_vesta_case(mix, "BBIOR", rng=0)
        maxsyseff = run_vesta_case(mix, "MaxSysEff", rng=0)
        assert maxsyseff.summary.system_efficiency >= 0.9 * bb_ior.summary.system_efficiency

    def test_single_application_overhead_is_small(self):
        """With one application the scheduler only adds its request overhead."""
        solo_ior = run_vesta_case("512", "IOR", rng=0)
        solo_sched = run_vesta_case("512", "MaxSysEff", rng=0)
        loss = (
            solo_ior.summary.system_efficiency - solo_sched.summary.system_efficiency
        ) / solo_ior.summary.system_efficiency
        assert 0.0 <= loss < 0.1

    def test_figure16_maxsyseff_sacrifices_small_application(self):
        data = figure16_per_application_dilation("512/256/256/32", rng=0)
        small_app = "ior-3-32n"
        big_app = "ior-0-512n"
        # MaxSysEff favours the big application at the expense of the small one.
        assert data["MaxSysEff"][big_app] <= data["MaxSysEff"][small_app]
        # MinDilation keeps the spread of dilations tighter than MaxSysEff.
        spread = lambda d: max(d.values()) - min(d.values())  # noqa: E731
        assert spread(data["MinDilation"]) <= spread(data["MaxSysEff"])


class TestPeriodicVsOnline:
    def test_periodic_schedule_competitive_on_steady_state(self):
        """Periodic schedules reach a steady-state efficiency comparable to
        what the online scheduler achieves on the same applications.

        The comparison uses applications whose individual I/O does not
        saturate the whole back-end (otherwise the greedy periodic insertion
        has no choice but to serialize all transfers, which the paper leaves
        to future work to improve on).
        """
        from repro.core.application import Application
        from repro.core.platform import Platform
        from repro.core.scenario import Scenario
        from repro.periodic import InsertInScheduleThrou, search_period

        platform = Platform("steady", 200, 1e6, 2e7)
        apps = [
            Application.periodic(f"s{i}", 30, work=120.0 + 30 * i, io_volume=8e8,
                                 n_instances=4)
            for i in range(4)
        ]
        result = search_period(
            InsertInScheduleThrou(), platform, apps,
            objective="system_efficiency", epsilon=0.2, max_period_factor=5.0,
        )
        periodic_eff = result.best_schedule.summary().system_efficiency
        scenario = Scenario(platform=platform, applications=tuple(apps))
        online = simulate(scenario, make_scheduler("MaxSysEff"), SimulatorConfig())
        online_eff = online.summary().system_efficiency
        assert result.best_schedule.is_complete()
        assert periodic_eff >= 0.6 * online_eff

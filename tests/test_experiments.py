"""Unit tests for the experiment harness (runner, comparison, overhead, vesta, reporting)."""

from __future__ import annotations

import pytest

from repro.core.application import Application
from repro.core.platform import Platform, intrepid
from repro.core.scenario import Scenario
from repro.experiments.comparison import (
    FIGURE6_SCENARIOS,
    TABLE_SCHEDULERS,
    congested_moments_experiment,
    figure6_experiment,
)
from repro.experiments.overhead import (
    DEFAULT_OVERHEAD,
    OverheadModel,
    scenario_overhead_fractions,
)
from repro.experiments.reporting import (
    format_mapping,
    format_series,
    format_table,
    percent,
    ratio,
)
from repro.experiments.runner import (
    CaseResult,
    ExperimentGrid,
    SchedulerCase,
    map_parallel,
    resolve_workers,
    run_case,
    run_grid,
)
from repro.experiments.vesta import (
    VESTA_CONFIGURATIONS,
    figure14_overheads,
    figure16_per_application_dilation,
    run_vesta_case,
    vesta_experiment,
)
from repro.utils.validation import ValidationError
from repro.workload.ior import ior_scenario


def tiny_scenario(label="tiny") -> Scenario:
    platform = Platform("p", 100, 1e6, 2e7)
    apps = tuple(
        Application.periodic(f"a{i}", 30, work=20.0, io_volume=3e8, n_instances=2)
        for i in range(3)
    )
    return Scenario(platform=platform, applications=apps, label=label)


class TestRunner:
    def test_run_case_basic(self):
        case = SchedulerCase(name="MaxSysEff")
        result = run_case(tiny_scenario(), case)
        assert isinstance(result, CaseResult)
        assert result.scheduler_label == "MaxSysEff"
        assert 0 < result.system_efficiency <= 100
        assert result.dilation >= 1.0
        assert result.upper_limit >= result.system_efficiency - 1e-9

    def test_run_case_returns_result_object(self):
        case = SchedulerCase(name="FairShare")
        case_result, sim_result = run_case(tiny_scenario(), case, return_result=True)
        assert sim_result.scheduler_name == "FairShare"
        assert case_result.makespan == pytest.approx(sim_result.makespan)

    def test_burst_buffer_case_requires_spec(self):
        case = SchedulerCase(name="Intrepid", use_burst_buffer=True)
        with pytest.raises(ValidationError):
            run_case(tiny_scenario(), case)

    def test_burst_buffer_platform_override(self):
        bb_platform = Platform(
            "p-bb", 100, 1e6, 2e7,
            burst_buffer=__import__("repro.core.platform", fromlist=["BurstBufferSpec"]).BurstBufferSpec(
                capacity=1e8, ingest_bandwidth=1e8, drain_bandwidth=1e7
            ),
        )
        case = SchedulerCase(
            name="FairShare",
            use_burst_buffer=True,
            burst_buffer_platform=bb_platform,
            label="FairShare+BB",
        )
        result = run_case(tiny_scenario(), case)
        assert result.scheduler_label == "FairShare+BB"

    def test_case_display_labels(self):
        assert SchedulerCase("MaxSysEff").display == "MaxSysEff"
        assert SchedulerCase("MaxSysEff", use_burst_buffer=True).display == "MaxSysEff+BB"
        assert SchedulerCase("X", label="custom").display == "custom"

    def test_run_grid_shape_and_series(self):
        scenarios = [tiny_scenario("s1"), tiny_scenario("s2")]
        cases = [SchedulerCase("MaxSysEff"), SchedulerCase("MinDilation")]
        grid = run_grid(scenarios, cases)
        assert grid.schedulers() == ["MaxSysEff", "MinDilation"]
        assert grid.scenarios() == ["s1", "s2"]
        assert len(grid.series("MaxSysEff", "dilation")) == 2
        averages = grid.averages()
        assert set(averages) == {"MaxSysEff", "MinDilation"}
        assert grid.cell("s1", "MaxSysEff").scenario_label == "s1"

    def test_grid_missing_cell(self):
        grid = ExperimentGrid()
        with pytest.raises(KeyError):
            grid.cell("nope", "nope")

    def test_run_grid_validates_inputs(self):
        with pytest.raises(ValidationError):
            run_grid([], [SchedulerCase("MaxSysEff")])
        with pytest.raises(ValidationError):
            run_grid([tiny_scenario()], [])


class TestParallelGrid:
    """The workers= fan-out must be cell-for-cell identical to serial runs."""

    def test_resolve_workers(self):
        import os

        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == (os.cpu_count() or 1)
        with pytest.raises(ValidationError):
            resolve_workers(-1)

    def test_map_parallel_preserves_order(self):
        assert map_parallel(_square, [3, 1, 2], workers=2) == [9, 1, 4]
        assert map_parallel(_square, [3, 1, 2], workers=None) == [9, 1, 4]

    def test_run_grid_parallel_matches_serial(self):
        scenarios = [tiny_scenario("t0"), tiny_scenario_b()]
        cases = [SchedulerCase(name="MaxSysEff"), SchedulerCase(name="RoundRobin")]
        serial = run_grid(scenarios, cases)
        parallel = run_grid(scenarios, cases, workers=2)
        assert len(serial.cases) == len(parallel.cases)
        for s, p in zip(serial.cases, parallel.cases):
            assert (s.scenario_label, s.scheduler_label) == (
                p.scenario_label,
                p.scheduler_label,
            )
            assert s.makespan == p.makespan
            assert s.n_events == p.n_events
            assert s.summary == p.summary

    def test_vesta_rejects_live_generator_in_parallel(self):
        import numpy as np

        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError, match="seed-like"):
            vesta_experiment(
                scenarios=("512",), configurations=("IOR",), rng=rng, workers=2
            )
        with pytest.raises(ValidationError, match="seed-like"):
            figure14_overheads(("512",), rng=rng, workers=2)
        # Serial runs keep accepting live generators (state advances per cell).
        result = vesta_experiment(
            scenarios=("512",), configurations=("IOR",), rng=rng
        )
        assert len(result.cases) == 1

    def test_scenario_overhead_fractions_matches_method(self):
        scenarios = [tiny_scenario("t0"), tiny_scenario_b()]
        batch = scenario_overhead_fractions(scenarios)
        assert batch == [
            DEFAULT_OVERHEAD.scenario_overhead_fraction(s) for s in scenarios
        ]


def tiny_scenario_b() -> Scenario:
    platform = Platform("p", 100, 1e6, 2e7)
    apps = tuple(
        Application.periodic(f"b{i}", 20, work=35.0, io_volume=2e8, n_instances=3)
        for i in range(4)
    )
    return Scenario(platform=platform, applications=apps, label="tiny-b")


def _square(x: int) -> int:
    """Module-level so ProcessPoolExecutor can pickle it."""
    return x * x


class TestFigure6Experiment:
    def test_small_run_has_all_schedulers(self):
        result = figure6_experiment(
            "10large-20", n_repetitions=2, schedulers=("MaxSysEff", "MinDilation"),
            rng=0,
        )
        assert set(result.averages) == {"MaxSysEff", "MinDilation"}
        ranked = result.ranked_by_system_efficiency()
        assert ranked[0].system_efficiency >= ranked[-1].system_efficiency
        ranked_d = result.ranked_by_dilation()
        assert ranked_d[0].dilation <= ranked_d[-1].dilation

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError):
            figure6_experiment("nope", n_repetitions=1)

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValidationError):
            figure6_experiment(FIGURE6_SCENARIOS[0], n_repetitions=0)


class TestCongestedMomentsExperiment:
    def test_mira_small_campaign(self):
        result = congested_moments_experiment(
            "mira", n_moments=2, schedulers=("MaxSysEff", "MinDilation"), rng=0
        )
        table = result.table()
        assert "Mira" in table  # the baseline is always added
        assert "MaxSysEff" in table
        series = result.series("MaxSysEff", "system_efficiency")
        assert len(series) == 2
        assert len(result.upper_limit_series()) == 2
        assert result.mean_upper_limit() > 0

    def test_priority_only_filter(self):
        result = congested_moments_experiment(
            "intrepid",
            n_moments=1,
            schedulers=("MaxSysEff", "Priority-MaxSysEff"),
            rng=0,
            priority_only=True,
        )
        assert set(result.table()) == {"Priority-MaxSysEff", "Intrepid"}

    def test_unknown_machine(self):
        with pytest.raises(ValidationError):
            congested_moments_experiment("jaguar", n_moments=1)

    def test_table_schedulers_constant_matches_paper_rows(self):
        assert "MinMax-0.25" in TABLE_SCHEDULERS
        assert "Priority-MinDilation" in TABLE_SCHEDULERS


class TestOverheadModel:
    def test_per_instance_overhead_amortized(self):
        model = OverheadModel(request_latency=1.0, per_node_cost=0.01)
        solo = model.per_instance_overhead(512, 1)
        shared = model.per_instance_overhead(512, 4)
        assert solo > shared > 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DEFAULT_OVERHEAD.per_instance_overhead(0, 1)
        with pytest.raises(ValueError):
            DEFAULT_OVERHEAD.per_instance_overhead(16, 0)

    def test_fraction_in_paper_range_for_vesta_mixes(self):
        overheads = figure14_overheads()
        values = list(overheads.values())
        assert min(values) >= 0.5
        assert max(values) <= 6.0
        # Single 512-node group pays more than the 4x512 mix.
        assert overheads["512"] > overheads["512/512/512/512"]

    def test_apply_to_scenario_lengthens_instances(self):
        scenario = ior_scenario("256/256", rng=0)
        inflated = DEFAULT_OVERHEAD.apply_to_scenario(scenario)
        for original, modified in zip(scenario, inflated):
            assert modified.instances[0].work > original.instances[0].work
            assert modified.instances[0].io_volume == original.instances[0].io_volume

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValidationError):
            OverheadModel(request_latency=-1.0)


class TestVestaExperiment:
    def test_single_case_ior(self):
        case = run_vesta_case("256/256", "IOR", rng=0)
        assert case.configuration == "IOR"
        assert case.summary.dilation >= 1.0
        assert set(case.per_application_dilation) == {"ior-0-256n", "ior-1-256n"}

    def test_single_case_heuristic_with_bb(self):
        case = run_vesta_case("256/256", "BBMaxSysEff", rng=0)
        assert case.summary.system_efficiency > 0

    def test_unknown_configuration(self):
        with pytest.raises(ValidationError):
            run_vesta_case("256", "Nonsense")

    def test_small_grid(self):
        result = vesta_experiment(
            scenarios=("256/256", "32/512"), configurations=("IOR", "MaxSysEff")
        )
        assert result.scenarios() == ["256/256", "32/512"]
        assert len(result.series("IOR", "system_efficiency")) == 2
        assert len(result.series("MaxSysEff", "dilation")) == 2

    def test_figure16_contains_all_configurations(self):
        data = figure16_per_application_dilation("512/256/256/32")
        assert set(data) == {"IOR", "MaxSysEff", "MinDilation"}
        for dilations in data.values():
            assert len(dilations) == 4
            assert all(d >= 1.0 - 1e-9 for d in dilations.values())

    def test_configuration_list_is_paper_grid(self):
        assert len(VESTA_CONFIGURATIONS) == 6
        assert {"IOR", "BBIOR"} <= set(VESTA_CONFIGURATIONS)


class TestReporting:
    def test_format_table_alignment_and_numbers(self):
        text = format_table(
            ["Scheduler", "SysEff", "Dilation"],
            [["MaxSysEff", 85.351, 2.456], ["MinDilation", 70.4, 1.6]],
            title="Table 1",
        )
        assert "Table 1" in text
        assert "85.35" in text and "1.60" in text
        assert text.endswith("\n")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_table_requires_headers(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_format_series(self):
        assert format_series("x", [1.0, 2.5]) == "x: [1.00, 2.50]"

    def test_format_mapping_sorted(self):
        text = format_mapping({"b": 2.0, "a": 1.0}, sort=True)
        assert text.index("a") < text.index("b")

    def test_percent_and_ratio(self):
        assert percent(85.354) == "85.35"
        assert ratio(2.456) == "2.46"
        assert ratio(float("inf")) == "inf"
        assert ratio(float("nan")) == "-"

"""End-to-end cache-key semantics of the result store (ISSUE 5 tentpole).

The contract under test:

* an unchanged spec re-run against the same store is **100% hits**, performs
  **zero simulation work**, and produces a **byte-identical** payload;
* changing any key ingredient — the seed, or the producing modules' code
  fingerprint — misses and recomputes;
* a corrupted/truncated store entry degrades to a recompute, never a crash;
* deleting a subset of entries (the interrupted-campaign shape) recomputes
  exactly the missing cells.
"""

from __future__ import annotations

import json

import pytest

import repro.config.run as config_run
import repro.experiments.runner as runner_module
from repro.config import parse_spec, run_spec
from repro.experiments.reporting import _jsonable
from repro.store import ResultStore, clear_fingerprint_cache

TINY_GRID = {
    "experiment": {"name": "tiny", "kind": "grid", "seed": 5, "max_time": 500.0},
    "platform": {
        "preset": "generic",
        "processors": 100,
        "node_bandwidth": 1.0e6,
        "system_bandwidth": 2.0e7,
    },
    "scenarios": [{"kind": "mix", "small": 3, "io_ratio": 0.2}],
    "schedulers": {"names": ["FairShare", "MaxSysEff"]},
}

TINY_ANALYSIS = {
    "experiment": {"name": "tiny-analysis", "kind": "analysis", "seed": 7,
                   "max_time": 400.0},
    "analysis": {
        "figures": ["figure1", "figure5"],
        "platform": {
            "preset": "generic",
            "processors": 100,
            "node_bandwidth": 1.0e6,
            "system_bandwidth": 2.0e7,
        },
        "figure1": {"n_applications": 4, "applications_per_batch": 2,
                    "release_spread": 0.1},
        "figure5": {"n_jobs": 40},
    },
}


def _payload_bytes(result) -> str:
    """The exact artefact bytes ``write_json`` would emit."""
    return json.dumps(_jsonable(dict(result.payload)), indent=2, sort_keys=False)


@pytest.fixture(autouse=True)
def _reset_fingerprint_cache():
    # REPRO_CACHE_SALT is read per call, but (root, salt) pairs are
    # memoized; keep tests that mutate the environment independent.
    clear_fingerprint_cache()
    yield
    clear_fingerprint_cache()


def _forbid_simulation(monkeypatch):
    """Make any simulator/study invocation explode."""

    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("simulation work performed on a cached rerun")

    monkeypatch.setattr(runner_module, "run_case", boom)
    for figure in list(config_run._ANALYSIS_RUNNERS):
        monkeypatch.setitem(config_run._ANALYSIS_RUNNERS, figure, boom)


# ---------------------------------------------------------------------- #
class TestUnchangedSpec:
    def test_second_run_is_all_hits_and_byte_identical(self, tmp_path, monkeypatch):
        spec = parse_spec(TINY_GRID)
        store = ResultStore(tmp_path)
        first = run_spec(spec, store=store)
        assert first.store_stats["misses"] == 2
        assert first.store_stats["writes"] == 2

        _forbid_simulation(monkeypatch)
        second = run_spec(spec, store=ResultStore(tmp_path))
        assert second.store_stats == {
            "hits": 2, "misses": 0, "writes": 0, "corrupt": 0,
            "collisions": 0, "write_errors": 0, "hit_rate": 1.0,
        }
        assert _payload_bytes(second) == _payload_bytes(first)
        assert second.text == first.text
        assert second.records == first.records

    def test_analysis_studies_are_memoized(self, tmp_path, monkeypatch):
        spec = parse_spec(TINY_ANALYSIS)
        store = ResultStore(tmp_path)
        first = run_spec(spec, store=store)
        assert first.store_stats["misses"] == 2  # one per figure study

        _forbid_simulation(monkeypatch)
        second = run_spec(spec, store=ResultStore(tmp_path))
        assert second.store_stats["hits"] == 2
        assert second.store_stats["misses"] == 0
        assert _payload_bytes(second) == _payload_bytes(first)

    def test_cached_run_is_identical_to_uncached_run(self, tmp_path):
        spec = parse_spec(TINY_GRID)
        cold = run_spec(spec)
        store = ResultStore(tmp_path)
        run_spec(spec, store=store)
        warm = run_spec(spec, store=store)
        assert cold.store_stats is None
        assert _payload_bytes(warm) == _payload_bytes(cold)

    def test_progress_lines_match_between_cold_and_cached_runs(self, tmp_path):
        spec = parse_spec(TINY_GRID)
        store = ResultStore(tmp_path)
        cold_lines: list[str] = []
        run_spec(spec, progress=cold_lines.append, store=store)
        warm_lines: list[str] = []
        run_spec(spec, progress=warm_lines.append, store=ResultStore(tmp_path))
        assert warm_lines == cold_lines


# ---------------------------------------------------------------------- #
class TestKeyIngredients:
    def test_seed_change_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        run_spec(parse_spec(TINY_GRID), store=store)
        reseeded = dict(TINY_GRID, experiment=dict(TINY_GRID["experiment"], seed=6))
        second = run_spec(parse_spec(reseeded), store=ResultStore(tmp_path))
        assert second.store_stats["hits"] == 0
        assert second.store_stats["misses"] == 2

    def test_max_time_change_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        run_spec(parse_spec(TINY_GRID), store=store)
        retimed = dict(
            TINY_GRID, experiment=dict(TINY_GRID["experiment"], max_time=600.0)
        )
        second = run_spec(parse_spec(retimed), store=ResultStore(tmp_path))
        assert second.store_stats["hits"] == 0

    def test_code_fingerprint_change_misses(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        run_spec(parse_spec(TINY_GRID), store=store)
        # Simulate "a producing module changed" via the fingerprint salt.
        monkeypatch.setenv("REPRO_CACHE_SALT", "simulator-was-edited")
        second = run_spec(parse_spec(TINY_GRID), store=ResultStore(tmp_path))
        assert second.store_stats["hits"] == 0
        assert second.store_stats["misses"] == 2
        # Back to the original code state: the original entries still hit.
        monkeypatch.delenv("REPRO_CACHE_SALT")
        third = run_spec(parse_spec(TINY_GRID), store=ResultStore(tmp_path))
        assert third.store_stats["hits"] == 2

    def test_scheduler_set_change_hits_the_overlap(self, tmp_path):
        store = ResultStore(tmp_path)
        run_spec(parse_spec(TINY_GRID), store=store)
        extended = dict(
            TINY_GRID,
            schedulers={"names": ["FairShare", "MaxSysEff", "MinDilation"]},
        )
        second = run_spec(parse_spec(extended), store=ResultStore(tmp_path))
        # Per-cell keys: the two existing columns hit, the new one misses.
        assert second.store_stats["hits"] == 2
        assert second.store_stats["misses"] == 1


# ---------------------------------------------------------------------- #
class TestDegradedStores:
    def test_corrupted_entry_recomputes_instead_of_crashing(self, tmp_path):
        spec = parse_spec(TINY_GRID)
        store = ResultStore(tmp_path)
        first = run_spec(spec, store=store)
        victim = next(iter(store.entries())).path
        victim.write_text('{"key": "oops", "payload"')  # truncated garbage

        second_store = ResultStore(tmp_path)
        second = run_spec(spec, store=second_store)
        assert second.store_stats["corrupt"] == 1
        assert second.store_stats["misses"] == 1
        assert second.store_stats["hits"] == 1
        assert _payload_bytes(second) == _payload_bytes(first)
        # The recompute healed the store.
        third = run_spec(spec, store=ResultStore(tmp_path))
        assert third.store_stats["hits"] == 2

    def test_partial_store_recomputes_only_missing_cells(self, tmp_path):
        """The interrupted-campaign shape: some cells landed, some did not."""
        spec = parse_spec(TINY_GRID)
        store = ResultStore(tmp_path)
        first = run_spec(spec, store=store)
        entries = list(store.entries())
        entries[0].path.unlink()  # one cell "did not land"

        second = run_spec(spec, store=ResultStore(tmp_path))
        assert second.store_stats["hits"] == len(entries) - 1
        assert second.store_stats["misses"] == 1
        assert _payload_bytes(second) == _payload_bytes(first)

    def test_undecodable_payload_is_discarded_and_recomputed(self, tmp_path):
        """Valid JSON, right key, wrong shape: decode fails → recompute,
        and the poisoned entry is evicted rather than re-hit forever."""
        spec = parse_spec(TINY_GRID)
        store = ResultStore(tmp_path)
        first = run_spec(spec, store=store)
        victim = next(iter(store.entries()))
        entry = json.loads(victim.path.read_text())
        entry["payload"] = {"bogus": True}
        victim.path.write_text(json.dumps(entry))

        second = run_spec(spec, store=ResultStore(tmp_path))
        assert second.store_stats["corrupt"] == 1
        assert second.store_stats["misses"] == 1
        assert _payload_bytes(second) == _payload_bytes(first)
        third = run_spec(spec, store=ResultStore(tmp_path))
        assert third.store_stats["hits"] == 2

    def test_unwritable_store_still_completes_the_campaign(self, tmp_path, capsys):
        spec = parse_spec(TINY_GRID)
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        result = run_spec(spec, store=ResultStore(blocker / "store"))
        assert result.store_stats["write_errors"] == 2
        assert result.store_stats["misses"] == 2
        assert _payload_bytes(result) == _payload_bytes(run_spec(spec))

    def test_vesta_rng_none_is_never_cached(self, tmp_path):
        """rng=None means fresh entropy per run; memoizing it would freeze
        one run's random draw forever."""
        from repro.experiments.vesta import vesta_experiment

        store = ResultStore(tmp_path)
        vesta_experiment(
            scenarios=["512/256/256/32"], configurations=["IOR"],
            rng=None, store=store,
        )
        assert store.stats.writes == 0 and store.stats.lookups == 0


# ---------------------------------------------------------------------- #
TINY_FAULTED = {
    "experiment": {"name": "tiny-faulted", "kind": "grid", "seed": 5,
                   "max_time": 800.0},
    "platform": {
        "preset": "generic",
        "processors": 40,
        "node_bandwidth": 1.0e6,
        "system_bandwidth": 8.0e6,
    },
    "scenarios": [
        {
            "kind": "apps",
            "label": "duo",
            "apps": [
                {"name": "f0", "processors": 16, "work": 30.0,
                 "io_volume": 1.0e8, "instances": 2},
                {"name": "f1", "processors": 16, "work": 50.0,
                 "io_volume": 5.0e7, "instances": 2},
            ],
        }
    ],
    "faults": {
        "windows": [{"start": 40.0, "end": 120.0, "factor": 0.25}],
        "crashes": [{"app": "f1", "time": 60.0, "checkpoint_io": 5.0e7}],
    },
    "schedulers": {"names": ["FairShare", "MaxSysEff"]},
}


def _faulted_variant(**fault_updates):
    spec = json.loads(json.dumps(TINY_FAULTED))
    spec["faults"].update(fault_updates)
    return parse_spec(spec)


class TestFaultedCacheSemantics:
    """Satellite 4: fault parameters are first-class cache-key ingredients."""

    def test_faulted_rerun_is_all_hits_with_zero_simulation(
        self, tmp_path, monkeypatch
    ):
        spec = parse_spec(TINY_FAULTED)
        first = run_spec(spec, store=ResultStore(tmp_path))
        # 2 scenarios (healthy twin + faulted) x 2 schedulers.
        assert first.store_stats["misses"] == 4

        _forbid_simulation(monkeypatch)
        second = run_spec(spec, store=ResultStore(tmp_path))
        assert second.store_stats["hits"] == 4
        assert second.store_stats["misses"] == 0
        assert _payload_bytes(second) == _payload_bytes(first)

    @pytest.mark.parametrize(
        "variant",
        (
            {"windows": [{"start": 40.0, "end": 120.0, "factor": 0.3}]},
            {"windows": [{"start": 45.0, "end": 120.0, "factor": 0.25}]},
            {"crashes": [{"app": "f1", "time": 61.0, "checkpoint_io": 5.0e7}]},
            {"crashes": [{"app": "f1", "time": 60.0, "checkpoint_io": 6.0e7}]},
            {"crashes": [{"app": "f0", "time": 60.0, "checkpoint_io": 5.0e7}]},
        ),
        ids=("factor", "window-start", "crash-time", "checkpoint-io",
             "crash-app"),
    )
    def test_changing_any_fault_parameter_misses_faulted_cells_only(
        self, tmp_path, variant
    ):
        run_spec(parse_spec(TINY_FAULTED), store=ResultStore(tmp_path))
        second = run_spec(_faulted_variant(**variant),
                          store=ResultStore(tmp_path))
        # Healthy baseline cells are untouched by the fault edit and hit;
        # both faulted cells re-key and recompute.
        assert second.store_stats["hits"] == 2
        assert second.store_stats["misses"] == 2

    def test_changing_fault_seed_rekeys_stochastic_timelines(self, tmp_path):
        stochastic = {"seed": 1,
                      "random_windows": {"rate": 2e-3, "duration": 50.0,
                                         "factor": 0.5}}
        run_spec(_faulted_variant(**stochastic), store=ResultStore(tmp_path))
        second = run_spec(
            _faulted_variant(**dict(stochastic, seed=2)),
            store=ResultStore(tmp_path),
        )
        assert second.store_stats["hits"] == 2
        assert second.store_stats["misses"] == 2

"""Batched-engine edge cases the fuzzer is unlikely to hit.

The differential harness (`tests/test_engine_differential.py`) explores the
healthy interior of the scenario space; these tests pin the boundary
behaviours of :mod:`repro.simulator.batched` against the other two engines:

* a blackout that never lifts must raise the *same* diagnostic
  :class:`~repro.simulator.engine.StallError` — same stuck applications,
  same simulated time, same active-window listing — in all three engines;
* zero-application platforms are rejected at `Scenario` construction, so
  no engine ever sees an empty scenario (pinned here to keep the engines'
  "applications remain" invariant honest);
* single-breakpoint scenarios (one app, one instance, degenerate work/IO
  splits) exercise the shortest possible event chains;
* a crash placed exactly on a fault-window boundary must land on the same
  side of the window in every engine.
"""

from __future__ import annotations

import math

import pytest

from repro.core.application import Application
from repro.core.events import EventLog
from repro.core.platform import Platform
from repro.core.scenario import Scenario
from repro.faults import BandwidthWindow, CrashEvent, FaultModel
from repro.online.registry import make_scheduler
from repro.simulator.batched import batched_simulate
from repro.simulator.engine import SimulatorConfig, StallError, simulate
from repro.simulator.reference import reference_simulate
from repro.utils.validation import ValidationError

ENGINES = {
    "reference": reference_simulate,
    "heap": simulate,
    "batched": batched_simulate,
}


def _platform(total: int = 100) -> Platform:
    return Platform(
        name="edge",
        total_processors=total,
        node_bandwidth=1e6,
        system_bandwidth=2e7,
    )


def _run_all(scenario, scheduler_name="MaxSysEff", config=None):
    config = config or SimulatorConfig(record_events=True)
    results, logs = {}, {}
    for name, runner in ENGINES.items():
        log = EventLog()
        results[name] = runner(
            scenario, make_scheduler(scheduler_name), config, log
        )
        logs[name] = [
            (e.time, e.event_type, e.app_name, e.instance_index) for e in log
        ]
    for name in ("heap", "batched"):
        assert results[name].records == results["reference"].records, name
        assert results[name].makespan == results["reference"].makespan, name
        assert logs[name] == logs["reference"], name
    return results


class TestEternalBlackout:
    def _eternal_blackout_scenario(self) -> Scenario:
        apps = (
            Application.periodic(
                "writer", 20, work=10.0, io_volume=5e8, n_instances=3
            ),
            Application.periodic(
                "cruncher", 30, work=40.0, io_volume=2e8, n_instances=2
            ),
        )
        scenario = Scenario(platform=_platform(), applications=apps)
        # The PFS goes dark at t=30 and never comes back.
        return scenario.with_faults(
            FaultModel(
                windows=(
                    BandwidthWindow(start=30.0, end=math.inf, factor=0.0),
                )
            )
        )

    def test_same_stall_error_in_all_engines(self):
        scenario = self._eternal_blackout_scenario()
        messages = {}
        for name, runner in ENGINES.items():
            with pytest.raises(StallError) as exc_info:
                runner(scenario, make_scheduler("MaxSysEff"), SimulatorConfig())
            messages[name] = str(exc_info.value)
        # Identical diagnostic text: stuck apps, sim time, active window.
        assert messages["heap"] == messages["reference"]
        assert messages["batched"] == messages["reference"]
        message = messages["batched"]
        assert "stalled" in message
        assert "writer" in message
        assert "active fault window(s)" in message
        assert "factor=0" in message

    def test_stall_time_is_in_the_blackout(self):
        scenario = self._eternal_blackout_scenario()
        with pytest.raises(StallError) as exc_info:
            batched_simulate(
                scenario, make_scheduler("MaxSysEff"), SimulatorConfig()
            )
        # The reported simulation time must be at or past the window start.
        message = str(exc_info.value)
        time_text = message.split("simulation time t=")[1].split(")")[0]
        assert float(time_text) >= 30.0

    def test_truncation_before_the_stall_succeeds(self):
        # With max_time inside the pre-blackout window, every engine stops
        # cleanly (and identically) instead of stalling.
        scenario = self._eternal_blackout_scenario()
        _run_all(scenario, config=SimulatorConfig(max_time=25.0))


class TestZeroApplications:
    def test_scenario_constructor_rejects_empty(self):
        with pytest.raises(ValidationError, match="at least one application"):
            Scenario(platform=_platform(), applications=())

    def test_engines_never_see_empty_scenarios(self):
        # The invariant backing the engines' "no future event but
        # applications remain" diagnostic: a scenario always has >= 1 app,
        # so a drained event queue with live apps is an engine bug, not a
        # degenerate input.
        with pytest.raises(ValidationError):
            Scenario(
                platform=_platform(), applications=(), label="empty"
            )


class TestSingleBreakpoint:
    @pytest.mark.parametrize("scheduler", ("MaxSysEff", "RoundRobin", "FCFS"))
    def test_one_app_one_instance(self, scheduler):
        apps = (
            Application.periodic(
                "solo", 10, work=50.0, io_volume=1e8, n_instances=1
            ),
        )
        _run_all(Scenario(platform=_platform(), applications=apps), scheduler)

    def test_pure_compute_single_instance(self):
        apps = (
            Application.periodic(
                "cpu", 10, work=30.0, io_volume=0.0, n_instances=1
            ),
        )
        results = _run_all(Scenario(platform=_platform(), applications=apps))
        assert results["batched"].makespan == 30.0

    def test_pure_io_single_instance(self):
        apps = (
            Application.periodic(
                "io", 10, work=0.0, io_volume=1e8, n_instances=1
            ),
        )
        _run_all(Scenario(platform=_platform(), applications=apps))

    def test_release_after_everything(self):
        # One app released late: the first breakpoint IS the release.
        apps = (
            Application.periodic(
                "late", 10, work=5.0, io_volume=1e7, n_instances=1,
                release_time=500.0,
            ),
        )
        results = _run_all(Scenario(platform=_platform(), applications=apps))
        assert results["batched"].makespan > 500.0


class TestCrashOnWindowBoundary:
    def _scenario(self) -> Scenario:
        apps = (
            Application.periodic(
                "worker", 20, work=20.0, io_volume=4e8, n_instances=4
            ),
            Application.periodic(
                "peer", 20, work=35.0, io_volume=2e8, n_instances=3
            ),
        )
        return Scenario(platform=_platform(), applications=apps)

    @pytest.mark.parametrize("boundary", ("start", "end"))
    def test_crash_exactly_at_window_boundary(self, boundary):
        window = BandwidthWindow(start=60.0, end=140.0, factor=0.25)
        crash_time = window.start if boundary == "start" else window.end
        scenario = self._scenario().with_faults(
            FaultModel(
                windows=(window,),
                crashes=(
                    CrashEvent(
                        app_name="worker", time=crash_time, checkpoint_io=1e8
                    ),
                ),
            )
        )
        results = _run_all(scenario)
        assert results["batched"].fault_stats.n_crashes == 1
        assert results["batched"].records["worker"].restarts == 1

    def test_crash_on_blackout_entry(self):
        # Crash at the exact instant the PFS goes fully dark: the recovery
        # read must wait out the blackout in every engine, identically.
        scenario = self._scenario().with_faults(
            FaultModel(
                windows=(BandwidthWindow(start=80.0, end=160.0, factor=0.0),),
                crashes=(
                    CrashEvent(
                        app_name="worker", time=80.0, checkpoint_io=2e8
                    ),
                ),
            )
        )
        results = _run_all(scenario)
        stats = results["batched"].fault_stats
        assert stats.n_crashes == 1
        assert stats.blackout_time > 0.0

    def test_two_crashes_on_both_boundaries(self):
        window = BandwidthWindow(start=70.0, end=130.0, factor=0.1)
        scenario = self._scenario().with_faults(
            FaultModel(
                windows=(window,),
                crashes=(
                    CrashEvent(app_name="worker", time=70.0, checkpoint_io=5e7),
                    CrashEvent(app_name="peer", time=130.0, checkpoint_io=5e7),
                ),
            )
        )
        _run_all(scenario)

"""Unit tests for the telemetry layer: registry, spans, sinks, schemas.

The dynamic isolation contract (telemetry on/off payload byte-identity)
lives in ``tests/test_obs_isolation.py``; here we pin the mechanics the
sinks and the CLI rely on — metric semantics, span nesting, the Chrome
trace document, the ``repro-metrics/1`` JSONL stream, Prometheus text
exposition, the webhook, and the dependency-free schema validator.
"""

import json
import math
import threading

import pytest

from repro.obs.log import WEBHOOK_SCHEMA, JsonLogger, ProgressWebhook
from repro.obs.metrics import MetricsWriter, prometheus_text, write_prometheus
from repro.obs.schema import (
    validate_metrics_file,
    validate_trace_file,
    validate_webhook_file,
)
from repro.obs.telemetry import (
    MAX_SPANS,
    MetricsRegistry,
    Recorder,
    recorder,
)
from repro.obs.trace import trace_document, trace_events, write_trace


@pytest.fixture
def rec():
    r = Recorder()
    r.enable()
    return r


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #


class TestRegistry:
    def test_counter_accumulates_and_is_shared_by_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits", engine="numpy").add()
        reg.counter("hits", engine="numpy").add(2.0)
        reg.counter("hits", engine="python").add()
        values = {c.labels: c.value for c in reg.counters()}
        assert values[(("engine", "numpy"),)] == 3.0
        assert values[(("engine", "python"),)] == 1.0

    def test_label_order_does_not_split_series(self):
        reg = MetricsRegistry()
        reg.counter("c", a="1", b="2").add()
        reg.counter("c", b="2", a="1").add()
        assert len(reg.counters()) == 1
        assert reg.counters()[0].value == 2.0

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(4.0)
        g.add(-1.0)
        assert reg.gauge("depth").value == 3.0

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        assert h.cumulative_buckets() == [(0.1, 1), (1.0, 3), (math.inf, 4)]

    def test_snapshot_is_plain_json(self):
        reg = MetricsRegistry()
        reg.counter("c", k="v").add()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.2)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["counters"] == [{"name": "c", "labels": {"k": "v"}, "value": 1.0}]
        assert snap["histograms"][0]["count"] == 1


# --------------------------------------------------------------------------- #
# Recorder
# --------------------------------------------------------------------------- #


class TestRecorder:
    def test_disabled_recorder_records_nothing(self):
        r = Recorder()
        r.count("c")
        r.gauge_set("g", 1.0)
        r.observe("h", 0.1)
        with r.span("s"):
            pass
        with r.stage("build"):
            pass
        assert r.registry.snapshot() == {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        assert r.span_snapshot() == []
        assert r.elapsed_seconds() == 0.0

    def test_span_nesting_records_parent_and_depth(self, rec):
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        spans = {s.name: s for s in rec.span_snapshot()}
        assert spans["outer"].depth == 0 and spans["outer"].parent is None
        assert spans["inner"].depth == 1 and spans["inner"].parent == "outer"
        # Children close before parents, so the inner interval nests.
        outer, inner = spans["outer"], spans["inner"]
        assert inner.start_us >= outer.start_us
        assert inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us

    def test_span_observe_feeds_histogram(self, rec):
        with rec.span("s", observe="lat_seconds"):
            pass
        (h,) = rec.registry.histograms()
        assert h.name == "lat_seconds" and h.count == 1

    def test_span_args_survive(self, rec):
        with rec.span("cell", category="grid", scenario="congested"):
            pass
        (span,) = rec.span_snapshot()
        assert span.category == "grid"
        assert span.args == {"scenario": "congested"}

    def test_span_recorded_on_exception(self, rec):
        with pytest.raises(RuntimeError):
            with rec.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in rec.span_snapshot()] == ["doomed"]

    def test_stage_fires_hook_after_close(self, rec):
        closed = []
        rec.install_stage_hook(closed.append)
        with rec.stage("build", kind="grid"):
            assert closed == []
        assert closed == ["build"]
        (span,) = rec.span_snapshot()
        assert span.category == "stage" and span.args == {"kind": "grid"}

    def test_event_routes_through_log_hook(self, rec):
        events = []
        rec.install_log_hook(lambda name, fields: events.append((name, fields)))
        rec.event("cell-landed", cell=3)
        assert events == [("cell-landed", {"cell": 3})]

    def test_reset_clears_everything_and_disables(self, rec):
        rec.count("c")
        with rec.span("s"):
            pass
        rec.reset()
        assert not rec.enabled
        assert rec.span_snapshot() == []
        assert rec.registry.counters() == []

    def test_snapshot_meta_fields(self, rec):
        with rec.span("s"):
            pass
        snap = rec.snapshot()
        assert snap["n_spans"] == 1
        assert snap["spans_dropped"] == 0
        assert snap["elapsed_seconds"] >= 0.0
        assert isinstance(snap["pid"], int)

    def test_span_overflow_is_counted_not_silent(self, rec):
        rec.spans = [None] * MAX_SPANS  # simulate a full buffer
        with rec.span("overflow"):
            pass
        assert rec.spans_dropped == 1
        assert len(rec.spans) == MAX_SPANS

    def test_threaded_counting_is_consistent(self, rec):
        def bump():
            for _ in range(1000):
                rec.count("hits")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        (c,) = rec.registry.counters()
        assert c.value == 4000.0

    def test_process_recorder_is_a_singleton(self):
        assert recorder() is recorder()


# --------------------------------------------------------------------------- #
# Chrome trace sink
# --------------------------------------------------------------------------- #


class TestTrace:
    def test_trace_events_complete_phase_and_metadata(self, rec):
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        events = trace_events(rec.span_snapshot(), pid=7)
        phases = [e["ph"] for e in events]
        assert phases.count("M") >= 2  # process_name + >=1 thread_name
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"outer", "inner"}
        inner = next(e for e in xs if e["name"] == "inner")
        assert inner["args"]["parent"] == "outer"
        assert all(e["pid"] == 7 for e in events)

    def test_write_trace_roundtrips_and_validates(self, rec, tmp_path):
        with rec.span("s"):
            pass
        target = write_trace(tmp_path / "trace.json", rec)
        document = json.loads(target.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["schema"] == "repro-trace/1"
        assert validate_trace_file(target) == []

    def test_trace_document_reports_dropped_spans(self, rec):
        rec._spans_dropped = 3
        assert trace_document(rec)["otherData"]["spans_dropped"] == 3


# --------------------------------------------------------------------------- #
# Metrics sinks
# --------------------------------------------------------------------------- #


class TestMetricsWriter:
    def test_jsonl_snapshots_are_sequenced_and_valid(self, rec, tmp_path):
        rec.count("c")
        writer = MetricsWriter(tmp_path / "metrics.jsonl")
        writer.write_snapshot(rec, reason="stage:build")
        rec.count("c")
        writer.write_snapshot(rec, reason="final")
        lines = [
            json.loads(line)
            for line in (tmp_path / "metrics.jsonl").read_text().splitlines()
        ]
        assert [line["seq"] for line in lines] == [0, 1]
        assert [line["reason"] for line in lines] == ["stage:build", "final"]
        assert lines[1]["counters"][0]["value"] == 2.0
        assert validate_metrics_file(tmp_path / "metrics.jsonl") == []

    def test_writer_truncates_previous_run(self, rec, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text("stale garbage\n")
        MetricsWriter(path).write_snapshot(rec, reason="final")
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["seq"] == 0


class TestPrometheus:
    def test_text_format_counter_gauge_histogram(self, rec, tmp_path):
        rec.count("repro_cells_total", scheduler="set10")
        rec.gauge_set("repro_workers_alive", 2)
        rec.registry.histogram("lat", bounds=(0.5,)).observe(0.1)
        text = prometheus_text(rec)
        assert "# TYPE repro_cells_total counter" in text
        assert 'repro_cells_total{scheduler="set10"} 1' in text
        assert "repro_workers_alive 2" in text
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.1" in text
        assert "lat_count 1" in text
        target = write_prometheus(tmp_path / "m.prom", rec)
        assert target.read_text() == text

    def test_label_values_are_escaped(self, rec):
        rec.count("c", path='a"b\\c')
        assert 'c{path="a\\"b\\\\c"} 1' in prometheus_text(rec)

    def test_empty_registry_yields_empty_text(self):
        assert prometheus_text(Recorder()) == ""


# --------------------------------------------------------------------------- #
# Structured log + webhook
# --------------------------------------------------------------------------- #


class TestLogAndWebhook:
    def test_json_logger_installs_as_event_sink(self, rec, tmp_path):
        log_path = tmp_path / "events.jsonl"
        JsonLogger(rec, path=log_path).install()
        rec.event("campaign-start", n_cells=6)
        (line,) = log_path.read_text().splitlines()
        record = json.loads(line)
        assert record["event"] == "campaign-start"
        assert record["n_cells"] == 6
        assert record["elapsed_seconds"] >= 0.0

    def test_json_logger_requires_exactly_one_sink(self, rec, tmp_path):
        with pytest.raises(ValueError):
            JsonLogger(rec)

    def test_webhook_file_mode_appends_valid_events(self, rec, tmp_path):
        target = tmp_path / "progress.jsonl"
        hook = ProgressWebhook(str(target), recorder=rec)
        hook.emit("run-start", spec="grid")
        hook.emit("run-complete", spec="grid")
        assert hook.sent == 2 and hook.errors == 0
        lines = [json.loads(line) for line in target.read_text().splitlines()]
        assert [line["seq"] for line in lines] == [0, 1]
        assert all(line["schema"] == WEBHOOK_SCHEMA for line in lines)
        assert validate_webhook_file(target) == []

    def test_webhook_failure_is_counted_never_raised(self, rec, tmp_path):
        hook = ProgressWebhook(str(tmp_path / "progress.jsonl"), recorder=rec)
        hook.target = str(tmp_path)  # a directory: append must fail
        hook.emit("doomed")
        assert hook.errors == 1 and hook.sent == 0
        (counter,) = [
            c for c in rec.registry.counters() if c.name == "obs_webhook_errors"
        ]
        assert counter.value == 1.0


# --------------------------------------------------------------------------- #
# Schema validator
# --------------------------------------------------------------------------- #


class TestSchemaValidator:
    def test_rejects_wrong_types_and_missing_keys(self, tmp_path):
        bad = tmp_path / "trace.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        errors = validate_trace_file(bad)
        assert any("displayTimeUnit" in e for e in errors)
        assert any("missing required key" in e for e in errors)

    def test_rejects_unparseable_file(self, tmp_path):
        bad = tmp_path / "trace.json"
        bad.write_text("{not json")
        assert validate_trace_file(bad)

    def test_empty_jsonl_is_an_error(self, tmp_path):
        empty = tmp_path / "metrics.jsonl"
        empty.write_text("")
        assert validate_metrics_file(empty) == [f"{empty}: no snapshot lines"]

    def test_cli_entry_point(self, rec, tmp_path, capsys):
        from repro.obs.schema import main

        with rec.span("s"):
            pass
        target = write_trace(tmp_path / "trace.json", rec)
        assert main(["trace", str(target)]) == 0
        assert main(["nope", str(target)]) == 2

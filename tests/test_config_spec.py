"""Tests for the declarative config layer (:mod:`repro.config`).

Three concerns:

* **round-trip** — a spec-driven grid is cell-for-cell identical to the
  equivalent hand-built :func:`repro.experiments.runner.run_grid` call
  (the ISSUE 2 acceptance criterion), and the determinism contract
  (entry/repetition seed derivation) holds under spec edits;
* **parsing** — TOML and JSON load to the same spec, defaults apply,
  overrides compose;
* **errors** — malformed specs fail with messages that name the offending
  key path and the accepted alternatives.
"""

from __future__ import annotations

import csv
import json
import math

import pytest

from repro.config import (
    ExperimentSpec,
    SpecError,
    build_cases,
    build_grid_scenarios,
    load_spec,
    parse_spec,
    parse_spec_text,
    run_spec,
    write_result,
)
from repro.core.platform import intrepid
from repro.experiments.comparison import figure6_experiment
from repro.experiments.runner import SchedulerCase, run_grid
from repro.utils.rng import spawn_rngs
from repro.workload.congested import CongestedMomentSpec, generate_congested_moment
from repro.workload.generator import MixSpec, generate_mix


# ---------------------------------------------------------------------- #
# Shared spec payloads (dicts; TOML/JSON parse to exactly these shapes)
# ---------------------------------------------------------------------- #
PLATFORM = {
    "preset": "generic",
    "processors": 200,
    "node_bandwidth": 1.0e6,
    "system_bandwidth": 2.0e7,
    "name": "spec-test",
}


def grid_spec_data(seed: int = 11) -> dict:
    return {
        "experiment": {
            "name": "round-trip",
            "kind": "grid",
            "seed": seed,
            "max_time": 2000.0,
        },
        "platform": dict(PLATFORM),
        "scenarios": [
            {"kind": "mix", "label": "mixA", "small": 4, "large": 1,
             "io_ratio": 0.25, "repetitions": 2},
            {"kind": "congested", "label": "hot", "congestion_factor": 1.5,
             "small": 3, "large": 1, "io_ratio": 0.2},
        ],
        "schedulers": {"names": ["FairShare", "MaxSysEff", "MinDilation"]},
    }


# ---------------------------------------------------------------------- #
# Round-trip: spec-driven == hand-built
# ---------------------------------------------------------------------- #
class TestRoundTrip:
    def hand_built_grid(self, seed: int):
        """The documented determinism contract, written out by hand."""
        platform = intrepid()  # replaced below; only shape matters
        from repro.core.platform import generic

        platform = generic(
            total_processors=200,
            node_bandwidth=1.0e6,
            system_bandwidth=2.0e7,
            name="spec-test",
        )
        entry_rngs = spawn_rngs(seed, 2)
        scenarios = []
        for rep, rng in enumerate(spawn_rngs(entry_rngs[0], 2)):
            scenarios.append(
                generate_mix(
                    MixSpec(n_small=4, n_large=1), platform, 0.25, rng,
                    label=f"mixA-rep{rep:02d}",
                )
            )
        (hot_rng,) = spawn_rngs(entry_rngs[1], 1)
        scenarios.append(
            generate_congested_moment(
                CongestedMomentSpec(
                    congestion_factor=1.5, n_small=3, n_large=1,
                    n_very_large=0, io_ratio=0.2,
                ),
                platform,
                hot_rng,
                label="hot",
            )
        )
        cases = [SchedulerCase(name=n)
                 for n in ("FairShare", "MaxSysEff", "MinDilation")]
        return run_grid(scenarios, cases, max_time=2000.0)

    def test_spec_grid_identical_to_hand_built(self):
        seed = 11
        result = run_spec(parse_spec(grid_spec_data(seed)))
        expected = self.hand_built_grid(seed)

        assert len(result.records) == len(expected.cases) == 9
        for record, case in zip(result.records, expected.cases):
            assert record["scenario"] == case.scenario_label
            assert record["scheduler"] == case.scheduler_label
            # Bit-for-bit: the builders must replay the exact random draws.
            assert record["system_efficiency"] == case.system_efficiency
            assert record["dilation"] == case.dilation
            assert record["upper_limit"] == case.upper_limit
            assert record["makespan"] == case.makespan
            assert record["n_events"] == case.n_events

    def test_entry_seed_pins_scenario_against_reordering(self):
        """An entry with its own seed is immune to entries inserted before it."""
        base = grid_spec_data()
        base["scenarios"][1]["seed"] = 123
        one = run_spec(parse_spec(base))

        extended = grid_spec_data()
        extended["scenarios"][1]["seed"] = 123
        extended["scenarios"].insert(
            0,
            {"kind": "mix", "label": "extra", "small": 2, "io_ratio": 0.1},
        )
        two = run_spec(parse_spec(extended))

        pinned_one = [r for r in one.records if r["scenario"] == "hot"]
        pinned_two = [r for r in two.records if r["scenario"] == "hot"]
        assert pinned_one == pinned_two

    def test_same_spec_same_results(self):
        a = run_spec(parse_spec(grid_spec_data()))
        b = run_spec(parse_spec(grid_spec_data()))
        assert a.records == b.records

    def test_figure6_spec_matches_direct_call(self):
        data = {
            "experiment": {"kind": "figure6", "seed": 3, "max_time": 1500.0},
            "figure6": {
                "panels": ["10large-20"],
                "n_repetitions": 2,
                "schedulers": ["MaxSysEff", "MinDilation"],
            },
        }
        result = run_spec(parse_spec(data))
        direct = figure6_experiment(
            "10large-20",
            n_repetitions=2,
            schedulers=("MaxSysEff", "MinDilation"),
            rng=3,
            max_time=1500.0,
        )
        averages = result.payload["panels"]["10large-20"]
        for name, avg in direct.averages.items():
            assert averages[name]["system_efficiency"] == avg.system_efficiency
            assert averages[name]["dilation"] == avg.dilation


# ---------------------------------------------------------------------- #
# Parsing & formats
# ---------------------------------------------------------------------- #
class TestParsing:
    def test_toml_and_json_parse_to_same_run(self, tmp_path):
        data = grid_spec_data()
        toml_text = """
[experiment]
name = "round-trip"
kind = "grid"
seed = 11
max_time = 2000.0

[platform]
preset = "generic"
processors = 200
node_bandwidth = 1.0e6
system_bandwidth = 2.0e7
name = "spec-test"

[[scenarios]]
kind = "mix"
label = "mixA"
small = 4
large = 1
io_ratio = 0.25
repetitions = 2

[[scenarios]]
kind = "congested"
label = "hot"
congestion_factor = 1.5
small = 3
large = 1
io_ratio = 0.2

[schedulers]
names = ["FairShare", "MaxSysEff", "MinDilation"]
"""
        toml_path = tmp_path / "spec.toml"
        toml_path.write_text(toml_text)
        json_path = tmp_path / "spec.json"
        json_path.write_text(json.dumps(data))

        from_toml = run_spec(load_spec(toml_path))
        from_json = run_spec(load_spec(json_path))
        assert from_toml.records == from_json.records

    def test_defaults(self):
        spec = parse_spec(
            {
                "experiment": {"kind": "grid"},
                "scenarios": [{"kind": "mix", "small": 2}],
                "schedulers": {"names": ["FairShare"]},
            }
        )
        assert spec.seed == 0
        assert spec.workers is None
        assert math.isinf(spec.max_time)
        assert spec.output is None
        assert spec.body.platform.preset == "intrepid"

    def test_with_overrides(self):
        spec = parse_spec(grid_spec_data())
        assert isinstance(spec, ExperimentSpec)
        changed = spec.with_overrides(seed=99, max_time=5.0, workers=2)
        assert (changed.seed, changed.max_time, changed.workers) == (99, 5.0, 2)
        # None leaves spec values alone.
        same = spec.with_overrides()
        assert same == spec

    def test_apps_entry_builds_declared_applications(self):
        spec = parse_spec(
            {
                "experiment": {"kind": "grid", "seed": 0},
                "platform": dict(PLATFORM),
                "scenarios": [
                    {
                        "kind": "apps",
                        "label": "pair",
                        "apps": [
                            {"name": "a", "processors": 50, "work": 10.0,
                             "io_volume": 1e8, "instances": 2},
                            {"name": "b", "processors": 50, "work": 20.0,
                             "io_volume": 2e8, "instances": 3,
                             "release": 5.0},
                        ],
                    }
                ],
                "schedulers": {"names": ["FairShare"]},
            }
        )
        scenarios = build_grid_scenarios(spec.body, spec.seed)
        assert len(scenarios) == 1
        apps = scenarios[0].applications
        assert [a.name for a in apps] == ["a", "b"]
        assert apps[1].release_time == 5.0
        assert apps[1].n_instances == 3

    def test_scale_also_scales_the_burst_buffer(self):
        """A scaled-down machine must not keep a full-size burst buffer."""
        from repro.config import build_burst_buffer_platform, build_platform
        from repro.config.spec import PlatformSpec
        from repro.core.platform import intrepid

        full = intrepid(with_burst_buffer=True).burst_buffer
        bb = build_burst_buffer_platform(
            PlatformSpec(preset="intrepid", scale=0.05)
        ).burst_buffer
        assert bb.capacity == pytest.approx(full.capacity * 0.05)
        assert bb.ingest_bandwidth == pytest.approx(full.ingest_bandwidth * 0.05)
        assert bb.drain_bandwidth == pytest.approx(full.drain_bandwidth * 0.05)
        # Unscaled platforms keep the preset buffer untouched.
        assert (
            build_platform(PlatformSpec(preset="intrepid"), with_burst_buffer=True)
            .burst_buffer
            == full
        )

    def test_bb_platform_keeps_spec_name_and_scale(self):
        """The BB variant must match the plain platform except for the buffer."""
        from repro.config import build_burst_buffer_platform, build_platform
        from repro.config.spec import PlatformSpec

        spec = PlatformSpec(preset="mira", name="my-mira", scale=0.5)
        plain = build_platform(spec)
        bb = build_burst_buffer_platform(spec)
        assert bb.name == plain.name == "my-mira"
        assert bb.total_processors == plain.total_processors
        assert bb.system_bandwidth == plain.system_bandwidth
        assert plain.burst_buffer is None and bb.burst_buffer is not None

    def test_burst_buffer_cases_bind_bb_platform(self):
        spec = parse_spec(
            {
                "experiment": {"kind": "grid"},
                "platform": {"preset": "intrepid"},
                "scenarios": [{"kind": "mix", "small": 2}],
                "schedulers": {
                    "names": ["FairShare"],
                    "cases": [
                        {"name": "Intrepid", "burst_buffer": True,
                         "label": "Intrepid+BB"}
                    ],
                },
            }
        )
        cases = build_cases(spec.body)
        assert cases[0].use_burst_buffer is False
        assert cases[1].use_burst_buffer is True
        assert cases[1].burst_buffer_platform is not None
        assert cases[1].burst_buffer_platform.burst_buffer is not None
        assert cases[1].display == "Intrepid+BB"

    def test_scale_only_platform_table_means_scaled_intrepid(self):
        from repro.config import build_platform

        spec = parse_spec(
            {
                "experiment": {"kind": "grid"},
                "platform": {"scale": 0.1},
                "scenarios": [{"kind": "mix", "small": 2}],
                "schedulers": {"names": ["FairShare"]},
            }
        )
        platform = build_platform(spec.body.platform)
        assert spec.body.platform.preset == "intrepid"
        assert platform.total_processors == 4096  # 40,960 x 0.1

    def test_vesta_oversized_mix_rejected_at_parse_time(self):
        with pytest.raises(SpecError, match="4096 nodes"):
            parse_spec(
                {
                    "experiment": {"kind": "vesta"},
                    "vesta": {"scenarios": ["4096"]},
                }
            )

    def test_vesta_spec_runs(self):
        result = run_spec(
            parse_spec(
                {
                    "experiment": {"kind": "vesta", "seed": 0},
                    "vesta": {
                        "scenarios": ["256", "256/256"],
                        "configurations": ["IOR", "MaxSysEff"],
                    },
                }
            )
        )
        assert len(result.records) == 4
        assert {r["configuration"] for r in result.records} == {"IOR", "MaxSysEff"}

    def test_congested_moments_spec_runs(self):
        result = run_spec(
            parse_spec(
                {
                    "experiment": {"kind": "congested-moments", "seed": 1,
                                   "max_time": 1000.0},
                    "congested_moments": {
                        "machine": "intrepid",
                        "n_moments": 2,
                        "schedulers": ["Priority-MaxSysEff"],
                    },
                }
            )
        )
        # 2 moments x (1 heuristic + the always-appended BB baseline).
        assert len(result.records) == 4
        assert result.payload["baseline"] == "Intrepid"


# ---------------------------------------------------------------------- #
# Output files
# ---------------------------------------------------------------------- #
class TestOutput:
    def test_json_and_csv_round_trip(self, tmp_path):
        result = run_spec(parse_spec(grid_spec_data()))

        json_path = write_result(result, path=str(tmp_path / "out.json"))
        payload = json.loads(json_path.read_text())
        assert payload["experiment"]["name"] == "round-trip"
        assert len(payload["cells"]) == len(result.records)

        csv_path = write_result(
            result, path=str(tmp_path / "out.csv"), format="csv"
        )
        with csv_path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.records)
        assert rows[0]["scenario"] == result.records[0]["scenario"]
        assert float(rows[0]["dilation"]) == pytest.approx(
            result.records[0]["dilation"]
        )

    def test_format_inferred_from_suffix(self, tmp_path):
        result = run_spec(parse_spec(grid_spec_data()))
        path = write_result(result, path=str(tmp_path / "cells.csv"))
        assert path.read_text().startswith("scenario,")

    def test_spec_output_without_format_infers_from_suffix(self, tmp_path):
        """A formatless [output] table with a .csv path must write CSV."""
        data = grid_spec_data()
        data["output"] = {"path": str(tmp_path / "run.csv")}
        result = run_spec(parse_spec(data))
        path = write_result(result)
        assert path is not None
        assert path.read_text().startswith("scenario,")

    def test_no_output_configured_returns_none(self):
        result = run_spec(parse_spec(grid_spec_data()))
        assert write_result(result) is None

    def test_path_override_suffix_beats_spec_format(self, tmp_path):
        """`--out cells.csv` must never receive the spec's JSON format."""
        data = grid_spec_data()
        data["output"] = {"path": str(tmp_path / "spec.json"), "format": "json"}
        result = run_spec(parse_spec(data))
        path = write_result(result, path=str(tmp_path / "cells.csv"))
        assert path.read_text().startswith("scenario,")
        # The spec's own path still honours its declared format.
        spec_path = write_result(result)
        assert spec_path.read_text().lstrip().startswith("{")


# ---------------------------------------------------------------------- #
# Malformed specs: message quality
# ---------------------------------------------------------------------- #
class TestErrors:
    def expect(self, data: dict, *needles: str) -> str:
        with pytest.raises(SpecError) as excinfo:
            parse_spec(data)
        message = str(excinfo.value)
        for needle in needles:
            assert needle in message, f"{needle!r} not in error: {message}"
        return message

    def test_missing_experiment_table(self):
        self.expect({}, "experiment")

    def test_unknown_kind_lists_choices(self):
        self.expect(
            {"experiment": {"kind": "figure99"}},
            "experiment.kind", "figure99", "grid",
        )

    def test_unknown_key_lists_expected(self):
        data = grid_spec_data()
        data["experiment"]["sede"] = 1  # typo for seed
        self.expect(data, "sede", "seed")

    def test_unknown_scenario_key_has_indexed_path(self):
        data = grid_spec_data()
        data["scenarios"][1]["congestion"] = 2.0  # typo
        self.expect(data, "scenarios[1]", "congestion")

    def test_wrong_type_names_path(self):
        data = grid_spec_data()
        data["scenarios"][0]["io_ratio"] = "lots"
        self.expect(data, "scenarios[0].io_ratio", "number", "lots")

    def test_bad_scheduler_name_lists_known(self):
        data = grid_spec_data()
        data["schedulers"]["names"] = ["MaxSysEfficiency"]
        self.expect(data, "schedulers.names[0]", "MaxSysEfficiency", "MaxSysEff")

    def test_empty_mix_rejected(self):
        data = grid_spec_data()
        data["scenarios"][0].update(small=0, large=0)
        self.expect(data, "scenarios[0]", "at least one application")

    def test_missing_schedulers_table(self):
        data = grid_spec_data()
        del data["schedulers"]
        self.expect(data, "schedulers")

    def test_generic_platform_requires_sizes(self):
        data = grid_spec_data()
        del data["platform"]["processors"]
        self.expect(data, "platform.processors", "generic")

    def test_preset_rejects_explicit_sizes(self):
        data = grid_spec_data()
        data["platform"] = {"preset": "intrepid", "processors": 10}
        self.expect(data, "platform.processors", "intrepid")

    def test_bad_ior_mix(self):
        data = grid_spec_data()
        data["scenarios"] = [{"kind": "ior", "mix": "512/abc"}]
        self.expect(data, "scenarios[0].mix", "abc")

    def test_negative_seed_rejected(self):
        data = grid_spec_data()
        data["experiment"]["seed"] = -1
        self.expect(data, "experiment.seed", ">= 0")

    def test_nan_rejected_everywhere_inf_only_for_max_time(self):
        data = grid_spec_data()
        data["experiment"]["max_time"] = float("nan")  # TOML: max_time = nan
        self.expect(data, "experiment.max_time", "NaN")
        data["experiment"]["max_time"] = float("inf")
        parse_spec(data)  # inf is the documented "no truncation" value
        data["experiment"]["max_time"] = 2000.0
        data["scenarios"][0]["io_ratio"] = float("inf")
        self.expect(data, "scenarios[0].io_ratio", "finite")

    def test_with_overrides_validates_bounds(self):
        spec = parse_spec(grid_spec_data())
        with pytest.raises(SpecError, match="seed must be >= 0"):
            spec.with_overrides(seed=-1)
        with pytest.raises(SpecError, match="workers must be >= 0"):
            spec.with_overrides(workers=-1)
        with pytest.raises(SpecError, match="max_time must be > 0"):
            spec.with_overrides(max_time=float("nan"))

    def test_burst_buffer_case_without_bb_platform(self):
        data = grid_spec_data()  # generic platform, no [platform.burst_buffer]
        data["schedulers"]["cases"] = [{"name": "FairShare", "burst_buffer": True}]
        spec = parse_spec(data)
        with pytest.raises(SpecError, match="burst_buffer"):
            build_cases(spec.body)

    def test_burst_buffer_case_rejects_per_entry_platform_override(self):
        """BB cases bind the grid platform; entry overrides would mismatch."""
        data = grid_spec_data()
        data["platform"] = {"preset": "intrepid"}
        data["scenarios"][0]["platform"] = {"preset": "mira"}
        data["schedulers"]["cases"] = [{"name": "Intrepid", "burst_buffer": True}]
        spec = parse_spec(data)
        with pytest.raises(SpecError, match=r"\[scenarios.platform\] overrides"):
            build_cases(spec.body)

    def test_vesta_rejects_max_time_at_parse_and_run(self):
        data = {
            "experiment": {"kind": "vesta", "max_time": 100.0},
            "vesta": {"scenarios": ["256"], "configurations": ["IOR"]},
        }
        with pytest.raises(SpecError, match="max_time is not supported"):
            parse_spec(data)
        # A CLI --max-time override lands after parsing; the runner rejects it.
        del data["experiment"]["max_time"]
        spec = parse_spec(data).with_overrides(max_time=100.0)
        with pytest.raises(SpecError, match="max_time is not supported"):
            run_spec(spec)

    def test_duplicate_scheduler_labels_rejected(self):
        """Colliding display labels would silently merge grid columns."""
        data = grid_spec_data()
        data["schedulers"]["cases"] = [
            {"name": "MinDilation", "label": "FairShare"}
        ]
        spec = parse_spec(data)
        with pytest.raises(SpecError, match="duplicate scheduler label"):
            build_cases(spec.body)

    def test_duplicate_labels_rejected(self):
        data = grid_spec_data()
        data["scenarios"][1]["label"] = "mixA-rep00"
        spec = parse_spec(data)
        with pytest.raises(SpecError, match="duplicate scenario label"):
            build_grid_scenarios(spec.body, spec.seed)

    def test_invalid_toml_text(self):
        with pytest.raises(SpecError, match="invalid TOML"):
            parse_spec_text("[experiment\nkind=", format="toml")

    def test_string_for_array_of_tables_rejected(self):
        data = grid_spec_data()
        data["scenarios"] = "mix"
        self.expect(data, "scenarios", "array of tables")

    def test_unwritable_output_path_is_validation_error(self):
        from repro.utils.validation import ValidationError

        result = run_spec(parse_spec(grid_spec_data()))
        with pytest.raises(ValidationError, match="cannot write results"):
            write_result(result, path="/proc/nope/out.json")

    def test_empty_output_path_rejected(self):
        data = grid_spec_data()
        data["output"] = {"path": "  "}
        self.expect(data, "output.path", "non-empty")

    def test_duplicate_list_entries_rejected(self):
        """Duplicate panels/schedulers/mixes would silently collapse in
        the keyed result payloads."""
        self.expect(
            {
                "experiment": {"kind": "figure6"},
                "figure6": {"panels": ["10large-20", "10large-20"]},
            },
            "figure6.panels[1]", "duplicates",
        )
        self.expect(
            {
                "experiment": {"kind": "vesta"},
                "vesta": {"scenarios": ["256", "256"]},
            },
            "vesta.scenarios[1]", "duplicates",
        )

    def test_json_null_treated_as_absent(self):
        """JSON null must behave like a missing key, never bypass checks."""
        self.expect({"experiment": {"kind": None}}, "experiment.kind")
        data = grid_spec_data()
        data["schedulers"] = {"names": ["FairShare"],
                              "cases": [{"name": None}]}
        self.expect(data, "schedulers.cases[0].name")
        # Optional keys fall back to their defaults.
        data = grid_spec_data()
        data["experiment"]["seed"] = None
        assert parse_spec(data).seed == 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="not found"):
            load_spec(tmp_path / "nope.toml")

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("x")
        with pytest.raises(SpecError, match="unsupported spec extension"):
            load_spec(path)

    def test_non_utf8_file_is_a_spec_error_naming_the_file(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_bytes(b"\xff\xfehello")
        with pytest.raises(SpecError, match="not valid UTF-8") as excinfo:
            load_spec(path)
        assert "bad.toml" in str(excinfo.value)

    def test_scheduler_pattern_with_bad_parameter_gets_spec_path(self):
        """MinMax-1.5 parses as a pattern but gamma is out of range."""
        data = grid_spec_data()
        data["schedulers"]["names"] = ["MinMax-1.5"]
        self.expect(data, "schedulers.names[0]", "1.5")

    def test_suffix_inference_is_case_insensitive(self, tmp_path):
        result = run_spec(parse_spec(grid_spec_data()))
        path = write_result(result, path=str(tmp_path / "CELLS.CSV"))
        assert path.read_text().startswith("scenario,")

"""The telemetry isolation contract, tested dynamically.

``--trace``/``--metrics``/``--profile`` may *observe* a run but never
change it: for every experiment kind the payload produced with the
recorder fully enabled (spans, metrics, sinks, stage hooks) must be
byte-identical to the payload produced with telemetry off, and the store
keys written by an instrumented run must equal those of a bare run.  The
static half of this contract is reprolint rule O001
(:mod:`repro.lint.obs_rules`); the rationale is ``docs/observability.md``.
"""

from __future__ import annotations

import json

import pytest

from repro.config import parse_spec, run_spec
from repro.obs.metrics import MetricsWriter
from repro.obs.telemetry import recorder
from repro.obs.trace import write_trace
from repro.store import ResultStore
from repro.store.fingerprint import PRODUCING_PACKAGES

PLATFORM = {
    "preset": "generic",
    "processors": 200,
    "node_bandwidth": 1.0e6,
    "system_bandwidth": 2.0e7,
    "name": "obs-isolation",
}

#: One small spec per experiment kind the dispatcher knows.
SPECS: dict[str, dict] = {
    "grid": {
        "experiment": {"name": "iso-grid", "kind": "grid", "seed": 7,
                       "max_time": 2000.0},
        "platform": dict(PLATFORM),
        "scenarios": [
            {"kind": "mix", "label": "mixA", "small": 3, "large": 1,
             "io_ratio": 0.25, "repetitions": 2},
        ],
        "schedulers": {"names": ["FairShare", "MaxSysEff"]},
    },
    "figure6": {
        "experiment": {"kind": "figure6", "seed": 3, "max_time": 1500.0},
        "figure6": {
            "panels": ["10large-20"],
            "n_repetitions": 2,
            "schedulers": ["MaxSysEff"],
        },
    },
    "congested-moments": {
        "experiment": {"kind": "congested-moments", "seed": 1,
                       "max_time": 1000.0},
        "congested_moments": {
            "machine": "intrepid",
            "n_moments": 1,
            "schedulers": ["Priority-MaxSysEff"],
        },
    },
    "vesta": {
        "experiment": {"kind": "vesta", "seed": 0},
        "vesta": {
            "scenarios": ["256"],
            "configurations": ["IOR", "MaxSysEff"],
        },
    },
    "periodic": {
        "experiment": {"name": "iso-periodic", "kind": "periodic", "seed": 3},
        "periodic": {
            "heuristics": ["throughput"],
            "online": ["MaxSysEff"],
            "epsilon": 0.2,
            "max_period_factor": 4.0,
            "platform": {"preset": "generic", "processors": 400,
                         "node_bandwidth": 1.0e6,
                         "system_bandwidth": 4.0e7, "name": "steady-state"},
            "apps": [
                {"name": "checkpointer", "processors": 120, "work": 180.0,
                 "io_volume": 2.4e9, "instances": 6},
                {"name": "analytics", "processors": 80, "work": 90.0,
                 "io_volume": 1.6e9, "instances": 8},
            ],
        },
    },
    "analysis": {
        "experiment": {"name": "iso-analysis", "kind": "analysis", "seed": 9,
                       "max_time": 4000.0},
        "analysis": {
            "figures": ["figure5"],
            "figure5": {"n_jobs": 40},
        },
    },
}


def payload_bytes(result) -> bytes:
    return json.dumps(result.payload, sort_keys=True).encode("utf-8")


def run_instrumented(data: dict, tmp_path, store=None):
    """Run a spec with the recorder fully live: spans, sinks, stage hooks."""
    rec = recorder()
    rec.reset()
    rec.enable()
    writer = MetricsWriter(tmp_path / "metrics.jsonl")
    rec.install_stage_hook(
        lambda stage: writer.write_snapshot(rec, reason=f"stage:{stage}")
    )
    try:
        return run_spec(parse_spec(data), store=store)
    finally:
        write_trace(tmp_path / "trace.json", rec)
        writer.write_snapshot(rec, reason="final")
        rec.reset()


@pytest.mark.parametrize("kind", sorted(SPECS))
def test_payload_identical_with_telemetry_on_and_off(kind, tmp_path):
    bare = run_spec(parse_spec(SPECS[kind]))
    instrumented = run_instrumented(SPECS[kind], tmp_path)
    assert payload_bytes(instrumented) == payload_bytes(bare)
    assert instrumented.records == bare.records
    assert instrumented.text == bare.text
    # The run really was observed — otherwise this test proves nothing.
    assert (tmp_path / "trace.json").exists()
    assert (tmp_path / "metrics.jsonl").read_text().strip()


def test_store_keys_identical_with_telemetry_on_and_off(tmp_path):
    bare_store = ResultStore(tmp_path / "bare")
    run_spec(parse_spec(SPECS["grid"]), store=bare_store)
    obs_store = ResultStore(tmp_path / "obs")
    run_instrumented(SPECS["grid"], tmp_path / "artefacts", store=obs_store)
    bare_keys = {entry.key for entry in bare_store.entries()}
    obs_keys = {entry.key for entry in obs_store.entries()}
    assert bare_keys == obs_keys
    assert bare_keys  # the grid spec caches at least one cell


def test_cached_replay_with_telemetry_matches_cold_bare_run(tmp_path):
    store = ResultStore(tmp_path / "store")
    cold = run_spec(parse_spec(SPECS["grid"]), store=store)
    warm = run_instrumented(SPECS["grid"], tmp_path / "artefacts", store=store)
    assert payload_bytes(warm) == payload_bytes(cold)
    assert warm.store_stats is not None and warm.store_stats["hits"] > 0


def test_obs_is_not_a_producing_package():
    # Editing telemetry must never invalidate cached results: repro.obs
    # stays out of the code fingerprint, like the linter and the CLI.
    assert "obs" not in PRODUCING_PACKAGES

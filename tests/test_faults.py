"""Fault-injection unit and determinism tests (ISSUE 6 tentpole).

Covers the fault vocabulary (:mod:`repro.faults.model`), the seeded
stochastic processes (:mod:`repro.faults.sampling`), the ``[faults]`` spec
surface, and the end-to-end determinism contract: a faulted campaign is
byte-identical between serial and multi-worker runs.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.config import SpecError, build_grid_scenarios, parse_spec, run_spec
from repro.experiments.reporting import _jsonable
from repro.faults import (
    BandwidthWindow,
    CrashEvent,
    FaultModel,
    FaultTimeline,
    sample_crashes,
    sample_windows,
)
from repro.faults.model import _degradation_segments
from repro.utils.validation import ValidationError

# --------------------------------------------------------------------------- #
# Model vocabulary
# --------------------------------------------------------------------------- #


class TestBandwidthWindow:
    def test_accepts_blackout_and_infinite_end(self):
        w = BandwidthWindow(start=5.0, end=math.inf, factor=0.0)
        assert w.factor == 0.0
        assert math.isinf(w.end)

    @pytest.mark.parametrize("factor", (1.0, 1.5, -0.1))
    def test_rejects_factor_outside_unit_interval(self, factor):
        with pytest.raises(ValidationError):
            BandwidthWindow(start=0.0, end=10.0, factor=factor)

    def test_rejects_empty_or_inverted_interval(self):
        with pytest.raises(ValidationError):
            BandwidthWindow(start=10.0, end=10.0, factor=0.5)
        with pytest.raises(ValidationError):
            BandwidthWindow(start=10.0, end=5.0, factor=0.5)
        with pytest.raises(ValidationError):
            BandwidthWindow(start=0.0, end=math.nan, factor=0.5)

    def test_rejects_negative_start(self):
        with pytest.raises(ValidationError):
            BandwidthWindow(start=-1.0, end=10.0, factor=0.5)


class TestCrashEvent:
    def test_defaults_and_coercion(self):
        c = CrashEvent(app_name="a", time=3)
        assert c.checkpoint_io == 0.0
        assert isinstance(c.time, float)

    def test_rejects_bad_fields(self):
        with pytest.raises(ValidationError):
            CrashEvent(app_name="", time=1.0)
        with pytest.raises(ValidationError):
            CrashEvent(app_name="a", time=-1.0)
        with pytest.raises(ValidationError):
            CrashEvent(app_name="a", time=1.0, checkpoint_io=-5.0)


class TestFaultModel:
    def test_is_empty(self):
        assert FaultModel().is_empty
        assert not FaultModel(
            windows=(BandwidthWindow(start=0.0, end=1.0, factor=0.5),)
        ).is_empty

    def test_rejects_wrong_element_types(self):
        with pytest.raises(ValidationError):
            FaultModel(windows=({"start": 0.0},))
        with pytest.raises(ValidationError):
            FaultModel(crashes=("a@3",))

    def test_crash_app_names(self):
        model = FaultModel(
            crashes=(
                CrashEvent(app_name="a", time=1.0),
                CrashEvent(app_name="b", time=2.0),
                CrashEvent(app_name="a", time=3.0),
            )
        )
        assert model.crash_app_names() == {"a", "b"}


# --------------------------------------------------------------------------- #
# Segment normalization and the shared timeline cursor
# --------------------------------------------------------------------------- #


class TestDegradationSegments:
    def test_overlap_takes_worst_factor(self):
        segments = _degradation_segments(
            (
                BandwidthWindow(start=0.0, end=10.0, factor=0.5),
                BandwidthWindow(start=5.0, end=15.0, factor=0.2),
            )
        )
        assert segments == [(0.0, 5.0, 0.5), (5.0, 15.0, 0.2)]

    def test_adjacent_equal_factor_windows_merge(self):
        segments = _degradation_segments(
            (
                BandwidthWindow(start=0.0, end=5.0, factor=0.3),
                BandwidthWindow(start=5.0, end=9.0, factor=0.3),
            )
        )
        assert segments == [(0.0, 9.0, 0.3)]

    def test_infinite_window(self):
        segments = _degradation_segments(
            (BandwidthWindow(start=4.0, end=math.inf, factor=0.0),)
        )
        assert segments == [(4.0, math.inf, 0.0)]

    def test_declaration_order_is_irrelevant(self):
        a = (
            BandwidthWindow(start=0.0, end=10.0, factor=0.5),
            BandwidthWindow(start=20.0, end=30.0, factor=0.1),
        )
        assert _degradation_segments(a) == _degradation_segments(tuple(reversed(a)))


class TestFaultTimeline:
    def _timeline(self):
        return FaultTimeline(
            FaultModel(
                windows=(
                    BandwidthWindow(start=10.0, end=20.0, factor=0.5),
                    BandwidthWindow(start=30.0, end=math.inf, factor=0.0),
                ),
                crashes=(
                    CrashEvent(app_name="b", time=12.0),
                    CrashEvent(app_name="a", time=12.0),
                    CrashEvent(app_name="c", time=40.0),
                ),
            )
        )

    def test_factor_at_forward_cursor(self):
        tl = self._timeline()
        assert tl.factor_at(0.0) == 1.0
        assert tl.factor_at(10.0) == 0.5
        assert tl.factor_at(19.5) == 0.5
        assert tl.factor_at(20.0) == 1.0
        assert tl.factor_at(30.0) == 0.0
        assert tl.factor_at(1e9) == 0.0

    def test_next_boundary(self):
        tl = self._timeline()
        assert tl.next_boundary(0.0) == 10.0
        assert tl.next_boundary(10.0) == 20.0
        assert tl.next_boundary(20.0) == 30.0
        # Inside a permanent blackout the factor never changes again.
        assert tl.next_boundary(30.0) is None

    def test_active_windows_diagnostic(self):
        tl = self._timeline()
        assert tl.active_windows(5.0) == []
        active = tl.active_windows(15.0)
        assert len(active) == 1 and active[0].factor == 0.5

    def test_pop_due_crashes_sorted_by_time_then_name(self):
        tl = self._timeline()
        assert tl.pop_due_crashes(5.0) == []
        due = tl.pop_due_crashes(12.0)
        assert [c.app_name for c in due] == ["a", "b"]
        # Already-popped crashes never fire twice.
        assert tl.pop_due_crashes(12.0) == []
        assert [c.app_name for c in tl.pop_due_crashes(100.0)] == ["c"]

    def test_peek_crash_time(self):
        tl = self._timeline()
        assert tl.peek_crash_time() == 12.0
        tl.pop_due_crashes(12.0)
        assert tl.peek_crash_time() == 40.0
        tl.pop_due_crashes(40.0)
        assert tl.peek_crash_time() is None


# --------------------------------------------------------------------------- #
# Stochastic sampling
# --------------------------------------------------------------------------- #


class TestSampling:
    def test_sample_windows_deterministic(self):
        kwargs = dict(rate=0.01, duration=50.0, factor=0.3, horizon=5000.0)
        a = sample_windows(rng=np.random.default_rng(7), **kwargs)
        b = sample_windows(rng=np.random.default_rng(7), **kwargs)
        assert a == b
        assert a  # the rate/horizon combination is near-certain to arrive
        assert all(
            w.factor == 0.3 and w.end - w.start == pytest.approx(50.0)
            for w in a
        )
        c = sample_windows(rng=np.random.default_rng(8), **kwargs)
        assert a != c

    def test_sample_crashes_deterministic_and_per_app(self):
        kwargs = dict(rate=0.01, checkpoint_io=5.0, horizon=2000.0)
        a = sample_crashes(["x", "y"], rng=np.random.default_rng(3), **kwargs)
        b = sample_crashes(["x", "y"], rng=np.random.default_rng(3), **kwargs)
        assert a == b
        assert {c.app_name for c in a} <= {"x", "y"}
        assert all(c.checkpoint_io == 5.0 for c in a)

    def test_sampling_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            sample_windows(rate=0.0, duration=1.0, factor=0.5, horizon=10.0, rng=rng)
        with pytest.raises(ValidationError):
            sample_windows(
                rate=1.0, duration=1.0, factor=0.5, horizon=math.inf, rng=rng
            )
        with pytest.raises(ValidationError):
            sample_crashes(["a"], rate=1.0, checkpoint_io=-1.0, horizon=10.0, rng=rng)


# --------------------------------------------------------------------------- #
# [faults] spec surface
# --------------------------------------------------------------------------- #

FAULTED_GRID = {
    "experiment": {"name": "faulted", "kind": "grid", "seed": 11,
                   "max_time": 2000.0},
    "platform": {
        "preset": "generic",
        "processors": 40,
        "node_bandwidth": 1.0e6,
        "system_bandwidth": 8.0e6,
    },
    "scenarios": [
        {
            "kind": "apps",
            "label": "duo",
            "apps": [
                {"name": "a0", "processors": 16, "work": 40.0,
                 "io_volume": 2.0e8, "instances": 3},
                {"name": "a1", "processors": 16, "work": 60.0,
                 "io_volume": 1.0e8, "instances": 3},
            ],
        }
    ],
    "faults": {
        "windows": [{"start": 100.0, "end": 300.0, "factor": 0.25}],
        "crashes": [{"app": "a1", "time": 150.0, "checkpoint_io": 1.0e8}],
    },
    "schedulers": {"names": ["FairShare", "MaxSysEff"]},
}


def _spec_dict(**updates):
    spec = json.loads(json.dumps(FAULTED_GRID))
    for path, value in updates.items():
        cursor = spec
        *parents, leaf = path.split(".")
        for key in parents:
            cursor = cursor.setdefault(key, {})
        if value is None:
            cursor.pop(leaf, None)
        else:
            cursor[leaf] = value
    return spec


class TestFaultsSpec:
    def test_parses_and_builds_with_baseline_twins(self):
        spec = parse_spec(FAULTED_GRID)
        assert spec.body.faults is not None
        assert spec.body.faults.baseline is True
        scenarios = build_grid_scenarios(spec.body, spec.seed,
                                         max_time=spec.max_time)
        labels = [s.label for s in scenarios]
        assert labels == ["duo", "duo+faults"]
        assert scenarios[0].faults is None
        faulted = scenarios[1].faults
        assert faulted is not None
        assert [w.factor for w in faulted.windows] == [0.25]
        assert [c.app_name for c in faulted.crashes] == ["a1"]

    def test_baseline_false_drops_healthy_twin(self):
        spec = parse_spec(_spec_dict(**{"faults.baseline": False}))
        scenarios = build_grid_scenarios(spec.body, spec.seed,
                                         max_time=spec.max_time)
        assert [s.label for s in scenarios] == ["duo+faults"]

    def test_unknown_crash_app_is_a_spec_error(self):
        spec = parse_spec(_spec_dict(**{
            "faults.crashes":
            [{"app": "ghost", "time": 5.0, "checkpoint_io": 0.0}]}))
        with pytest.raises(SpecError, match="ghost"):
            build_grid_scenarios(spec.body, spec.seed, max_time=spec.max_time)

    def test_factor_one_rejected_at_parse_time(self):
        with pytest.raises(SpecError, match="factor"):
            parse_spec(_spec_dict(**{
                "faults.windows": [{"start": 0.0, "factor": 1.0}]}))

    def test_empty_faults_section_rejected(self):
        with pytest.raises(SpecError, match="at least one"):
            parse_spec(_spec_dict(**{
                "faults.windows": None, "faults.crashes": None}))

    def test_faults_rejected_for_non_grid_kinds(self):
        spec = _spec_dict()
        spec["experiment"]["kind"] = "periodic"
        spec["experiment"].pop("max_time")
        spec["periodic"] = {"target_period": 100.0}
        with pytest.raises(SpecError, match="faults"):
            parse_spec(spec)

    def test_stochastic_faults_need_finite_horizon(self):
        spec = _spec_dict(**{
            "faults.random_windows": {"rate": 1e-3, "duration": 50.0,
                                      "factor": 0.5}})
        spec["experiment"].pop("max_time")
        with pytest.raises(SpecError, match="max_time"):
            parse_spec(spec)

    def test_stochastic_realization_pinned_by_fault_seed(self):
        spec = parse_spec(_spec_dict(**{
            "faults.seed": 42,
            "faults.random_crashes": {"rate": 2e-3, "checkpoint_io": 1.0e8},
        }))
        first = build_grid_scenarios(spec.body, spec.seed,
                                     max_time=spec.max_time)
        second = build_grid_scenarios(spec.body, spec.seed,
                                      max_time=spec.max_time)
        assert first[-1].faults == second[-1].faults
        # The fault seed is independent of the experiment seed.
        third = build_grid_scenarios(spec.body, spec.seed + 1,
                                     max_time=spec.max_time)
        assert first[-1].faults == third[-1].faults


# --------------------------------------------------------------------------- #
# End-to-end determinism: serial vs pooled byte-identity (satellite 4)
# --------------------------------------------------------------------------- #


def _payload_bytes(result) -> str:
    return json.dumps(_jsonable(dict(result.payload)), indent=2, sort_keys=False)


class TestFaultedDeterminism:
    def test_serial_and_pooled_runs_are_byte_identical(self):
        spec = parse_spec(_spec_dict(**{
            "faults.seed": 13,
            "faults.random_windows": {"rate": 1e-3, "duration": 100.0,
                                      "factor": 0.3},
        }))
        serial = run_spec(spec.with_overrides(workers=1))
        pooled = run_spec(spec.with_overrides(workers=2))
        assert _payload_bytes(serial) == _payload_bytes(pooled)
        again = run_spec(spec.with_overrides(workers=1))
        assert _payload_bytes(serial) == _payload_bytes(again)

    def test_resilience_payload_present_for_faulted_grids(self):
        spec = parse_spec(FAULTED_GRID)
        result = run_spec(spec)
        resilience = result.payload.get("resilience")
        assert resilience, "faulted grid must publish resilience records"
        schedulers = {row["scheduler"] for row in resilience}
        assert schedulers == {"FairShare", "MaxSysEff"}
        for row in resilience:
            assert row["total_crashes"] >= 1
            assert row["n_faulted_cells"] == 1
            assert 0.0 < row["throughput_retained"] <= 150.0
        assert "Resilience under fault injection" in result.text

    def test_healthy_grid_payload_has_no_fault_keys(self):
        healthy = _spec_dict(**{"faults": None})
        result = run_spec(parse_spec(healthy))
        assert "resilience" not in result.payload
        for row in result.payload["cells"]:
            assert not any(k.startswith("fault_") for k in row)

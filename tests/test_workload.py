"""Unit tests for the workload substrates (categories, generators, Darshan, congested, IOR)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.platform import intrepid, vesta
from repro.utils.validation import ValidationError
from repro.workload.categories import (
    CATEGORY_PROFILES,
    Category,
    CategoryProfile,
    categorize,
)
from repro.workload.congested import (
    CongestedMomentSpec,
    generate_congested_moment,
    intrepid_congested_moments,
    mira_congested_moments,
)
from repro.workload.darshan import (
    DarshanRecord,
    generate_records,
    load_records,
    record_to_application,
    replicate_uncovered,
    save_records,
)
from repro.workload.generator import (
    MixSpec,
    apply_sensibility,
    figure6_mix,
    generate_application,
    generate_mix,
)
from repro.workload.ior import VESTA_SCENARIOS, IORGroup, ior_scenario, parse_scenario

PLATFORM = intrepid()


class TestCategories:
    def test_thresholds(self):
        assert categorize(100) == Category.SMALL
        assert categorize(1284) == Category.SMALL
        assert categorize(1285) == Category.LARGE
        assert categorize(4584) == Category.LARGE
        assert categorize(4585) == Category.VERY_LARGE

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValidationError):
            categorize(0)

    def test_profiles_cover_all_categories(self):
        assert set(CATEGORY_PROFILES) == set(Category)

    def test_profiles_typical_nodes_inside_range(self):
        for profile in CATEGORY_PROFILES.values():
            for nodes in profile.typical_nodes:
                assert profile.min_nodes <= nodes <= profile.max_nodes

    def test_profile_validation(self):
        with pytest.raises(ValidationError):
            CategoryProfile(
                category=Category.SMALL,
                min_nodes=10,
                max_nodes=5,
                typical_nodes=(10,),
                io_fraction_range=(0.1, 0.2),
                instance_range=(1, 2),
                work_range=(1.0, 2.0),
            )


class TestGenerator:
    def test_mix_spec_total(self):
        assert MixSpec(n_small=3, n_large=2).total == 5

    def test_mix_spec_empty_rejected(self):
        with pytest.raises(ValidationError):
            MixSpec()

    def test_generate_application_category_respected(self):
        app = generate_application("x", Category.LARGE, PLATFORM, 0.2, rng=0)
        assert app.category == "large"
        assert app.is_periodic
        assert app.processors <= PLATFORM.total_processors

    def test_generate_application_io_ratio_controls_volume(self):
        low = generate_application("x", Category.SMALL, PLATFORM, 0.05, rng=1)
        high = generate_application("x", Category.SMALL, PLATFORM, 1.0, rng=1)
        # Same RNG stream: same work/processors, larger ratio -> more I/O.
        assert high.total_io_volume > low.total_io_volume

    def test_generate_mix_fills_platform(self):
        scenario = generate_mix(MixSpec(n_small=10, n_large=3), PLATFORM, 0.2, rng=0)
        assert scenario.used_processors <= PLATFORM.total_processors
        assert scenario.used_processors >= 0.9 * PLATFORM.total_processors
        assert scenario.n_applications == 13

    def test_generate_mix_unique_names(self):
        scenario = generate_mix(MixSpec(n_small=20), PLATFORM, 0.2, rng=0)
        assert len(set(scenario.application_names)) == 20

    def test_generate_mix_reproducible(self):
        a = generate_mix(MixSpec(n_small=5, n_large=1), PLATFORM, 0.2, rng=7)
        b = generate_mix(MixSpec(n_small=5, n_large=1), PLATFORM, 0.2, rng=7)
        assert [x.processors for x in a] == [y.processors for y in b]
        assert [x.total_io_volume for x in a] == [y.total_io_volume for y in b]

    @pytest.mark.parametrize("name", ["10large-20", "50small5large-20", "50small5large-35"])
    def test_figure6_mix_shapes(self, name):
        scenario = figure6_mix(name, PLATFORM, rng=0)
        if name == "10large-20":
            assert scenario.n_applications == 10
        else:
            assert scenario.n_applications == 55

    def test_figure6_unknown(self):
        with pytest.raises(KeyError):
            figure6_mix("nonsense", PLATFORM)


class TestSensibility:
    def test_zero_sensibility_is_identity(self):
        app = generate_application("x", Category.SMALL, PLATFORM, 0.2, rng=0)
        same = apply_sensibility(app, 0.0, 0.0, rng=1)
        assert np.allclose(same.work_array(), app.work_array())
        assert np.allclose(same.io_volume_array(), app.io_volume_array())

    def test_sensibility_spreads_but_preserves_midpoint(self):
        app = generate_application("x", Category.SMALL, PLATFORM, 0.2, rng=0)
        app = app.with_name("base")
        perturbed = apply_sensibility(app, 0.3, 0.0, rng=2)
        works = perturbed.work_array()
        base = app.instances[0].work
        # Every draw stays in the designed interval around the base value.
        lo = base * 2 * 0.7 / 1.7
        hi = lo / 0.7
        assert works.min() >= lo - 1e-9
        assert works.max() <= hi + 1e-9
        # The interval is centred on the periodic value.
        assert (lo + hi) / 2 == pytest.approx(base)

    def test_sensibility_io_only(self):
        app = generate_application("x", Category.SMALL, PLATFORM, 0.2, rng=0)
        perturbed = apply_sensibility(app, 0.0, 0.25, rng=3)
        assert np.allclose(perturbed.work_array(), app.work_array())
        assert perturbed.io_volume_array().std() > 0

    def test_non_periodic_rejected(self):
        from repro.core.application import Application

        aperiodic = Application.from_sequences("x", 4, [1, 2], [1, 1])
        with pytest.raises(ValidationError):
            apply_sensibility(aperiodic, 0.1)

    def test_out_of_range_rejected(self):
        app = generate_application("x", Category.SMALL, PLATFORM, 0.2, rng=0)
        with pytest.raises(ValidationError):
            apply_sensibility(app, 1.5)


class TestDarshan:
    def test_record_properties(self):
        rec = DarshanRecord("j", 2048, 0.0, 1000.0, 100.0, 1e12)
        assert rec.runtime == 1000.0
        assert rec.compute_time == 900.0
        assert rec.io_fraction == pytest.approx(0.1)
        assert rec.category == Category.LARGE
        assert rec.start_day == 0

    def test_record_validation(self):
        with pytest.raises(ValidationError):
            DarshanRecord("j", 0, 0.0, 1.0, 0.0, 0.0)
        with pytest.raises(ValidationError):
            DarshanRecord("j", 1, 10.0, 5.0, 0.0, 0.0)
        with pytest.raises(ValidationError):
            DarshanRecord("j", 1, 0.0, 10.0, 20.0, 0.0)

    def test_generate_records_shape(self):
        records = generate_records(200, PLATFORM, rng=0, coverage=0.5)
        assert len(records) == 200
        assert all(r.nodes <= PLATFORM.total_processors for r in records)
        # Sorted by start time.
        starts = [r.start_time for r in records]
        assert starts == sorted(starts)
        covered_fraction = sum(r.covered for r in records) / len(records)
        assert 0.3 < covered_fraction < 0.7

    def test_round_trip_persistence(self, tmp_path):
        records = generate_records(25, PLATFORM, rng=1)
        path = tmp_path / "darshan.jsonl"
        save_records(records, path)
        loaded = load_records(path)
        assert loaded == records

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValidationError):
            load_records(path)

    def test_record_to_application(self):
        rec = DarshanRecord("job-1", 1024, 0.0, 2000.0, 200.0, 5e12)
        app = record_to_application(rec, PLATFORM, n_instances=10)
        assert app.n_instances == 10
        assert app.total_io_volume == pytest.approx(5e12)
        assert app.total_work == pytest.approx(1800.0)

    def test_replicate_uncovered(self):
        records = generate_records(60, PLATFORM, rng=2, coverage=0.5)
        completed = replicate_uncovered(records, rng=3)
        assert len(completed) == len(records)
        assert all(r.covered for r in completed)

    def test_replicate_without_covered_rejected(self):
        uncovered = [
            DarshanRecord("j", 64, 0.0, 100.0, 10.0, 1e9, covered=False)
        ]
        with pytest.raises(ValidationError):
            replicate_uncovered(uncovered, rng=0)


class TestCongestedMoments:
    def test_congestion_factor_reached(self):
        spec = CongestedMomentSpec(
            congestion_factor=1.5, n_small=10, n_large=3, n_very_large=0, io_ratio=0.2
        )
        scenario = generate_congested_moment(spec, PLATFORM, rng=0)
        platform = scenario.platform
        demand = 0.0
        for app in scenario:
            inst = app.instances[0]
            peak = platform.peak_application_bandwidth(app.processors)
            demand += inst.io_volume / (inst.work + inst.io_volume / peak)
        assert demand == pytest.approx(1.5 * platform.system_bandwidth, rel=0.05)

    def test_series_sizes(self):
        assert len(intrepid_congested_moments(5, rng=0)) == 5
        assert len(mira_congested_moments(3, rng=0)) == 3

    def test_default_counts_match_paper(self):
        from repro.workload.congested import N_INTREPID_MOMENTS, N_MIRA_MOMENTS

        assert N_INTREPID_MOMENTS == 56
        assert N_MIRA_MOMENTS == 11

    def test_moments_are_reproducible(self):
        a = intrepid_congested_moments(3, rng=5)
        b = intrepid_congested_moments(3, rng=5)
        assert [m.metadata["congestion_factor"] for m in a] == [
            m.metadata["congestion_factor"] for m in b
        ]

    def test_moment_metadata(self):
        moment = intrepid_congested_moments(1, rng=0)[0]
        assert moment.metadata["congestion_factor"] > 1.0
        assert moment.label.startswith("intrepid-moment-")

    def test_invalid_spec(self):
        with pytest.raises(ValidationError):
            CongestedMomentSpec(0.0, 1, 0, 0, 0.2)
        with pytest.raises(ValidationError):
            CongestedMomentSpec(1.5, 0, 0, 0, 0.2)


class TestIOR:
    def test_parse_scenario(self):
        assert parse_scenario("512/256/256/32") == [512, 256, 256, 32]
        assert parse_scenario("256") == [256]

    @pytest.mark.parametrize("bad", ["", "abc", "256/-2", "256//32"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValidationError):
            parse_scenario(bad)

    def test_group_to_application(self):
        group = IORGroup("g", nodes=256, iterations=4, compute_time=100.0,
                         write_per_node=1e9)
        app = group.to_application()
        assert app.processors == 256
        assert app.n_instances == 4
        assert app.instances[0].io_volume == pytest.approx(256e9)

    def test_ior_scenario_builds_on_vesta(self):
        scenario = ior_scenario("512/256/256/32", rng=0)
        assert scenario.platform.name == "vesta"
        assert scenario.n_applications == 4
        assert scenario.used_processors == 512 + 256 + 256 + 32

    def test_ior_scenario_rejects_oversubscription(self):
        with pytest.raises(ValidationError):
            ior_scenario("2048/2048", rng=0)

    def test_jitter_changes_compute_times(self):
        jittered = ior_scenario("256/256", rng=1, jitter=0.2)
        works = [app.instances[0].work for app in jittered]
        assert works[0] != works[1]

    def test_vesta_scenarios_all_parse_and_fit(self):
        platform = vesta()
        for name in VESTA_SCENARIOS:
            counts = parse_scenario(name)
            assert sum(counts) <= platform.total_processors

"""Tests for the ``periodic`` and ``analysis`` experiment kinds (ISSUE 3).

Mirrors :mod:`tests.test_config_spec` for the two kinds that close the
ROADMAP coverage gap:

* **determinism** — the same spec produces the identical payload, and each
  analysis figure draws from a fixed seed slot (deselecting one figure
  never perturbs the others);
* **equivalence** — a spec-driven run matches the equivalent hand-built
  calls into :mod:`repro.periodic.period_search` and
  :mod:`repro.analysis`;
* **progress** — the callback threaded from ``run_spec`` fires once per
  cell / level / study, serially and in parallel;
* **errors** — malformed periodic/analysis specs fail with path-aware
  messages.
"""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import sensitivity_study
from repro.analysis.throughput import throughput_decrease_study
from repro.analysis.usage import characterize
from repro.config import SpecError, parse_spec, run_spec
from repro.core.application import Application
from repro.core.platform import generic, intrepid
from repro.core.scenario import Scenario
from repro.experiments.runner import SchedulerCase, run_grid
from repro.periodic.heuristics import InsertInScheduleCong, InsertInScheduleThrou
from repro.periodic.period_search import search_period
from repro.utils.rng import spawn_rngs
from repro.workload.darshan import generate_records

PLATFORM = {
    "preset": "generic",
    "processors": 400,
    "node_bandwidth": 1.0e6,
    "system_bandwidth": 4.0e7,
    "name": "steady-state",
}

APPS = [
    {"name": "checkpointer", "processors": 120, "work": 180.0,
     "io_volume": 2.4e9, "instances": 6},
    {"name": "analytics", "processors": 80, "work": 90.0,
     "io_volume": 1.6e9, "instances": 8},
    {"name": "solver", "processors": 150, "work": 420.0,
     "io_volume": 3.0e9, "instances": 4},
]


def periodic_spec_data(seed: int = 3) -> dict:
    return {
        "experiment": {"name": "periodic-test", "kind": "periodic",
                       "seed": seed},
        "periodic": {
            "heuristics": ["throughput", "congestion"],
            "online": ["MaxSysEff", "MinDilation"],
            "epsilon": 0.2,
            "max_period_factor": 4.0,
            "platform": dict(PLATFORM),
            "apps": [dict(a) for a in APPS],
        },
    }


def analysis_spec_data(seed: int = 9, figures=None) -> dict:
    data = {
        "experiment": {"name": "analysis-test", "kind": "analysis",
                       "seed": seed, "max_time": 4000.0},
        "analysis": {
            "figure1": {"n_applications": 8, "applications_per_batch": 4,
                        "release_spread": 0.0},
            "figure5": {"n_jobs": 60},
            "figure7": {"sensibilities": [0, 25], "n_repetitions": 2,
                        "schedulers": ["MaxSysEff"]},
        },
    }
    if figures is not None:
        data["analysis"]["figures"] = list(figures)
    return data


# ---------------------------------------------------------------------- #
# Determinism: same spec -> identical payload
# ---------------------------------------------------------------------- #
class TestDeterminism:
    def test_periodic_same_spec_same_payload(self):
        a = run_spec(parse_spec(periodic_spec_data()))
        b = run_spec(parse_spec(periodic_spec_data()))
        assert a.payload == b.payload
        assert a.records == b.records
        assert a.text == b.text

    def test_periodic_generated_mix_is_seeded(self):
        data = {
            "experiment": {"kind": "periodic", "seed": 5},
            "periodic": {"small": 3, "large": 1, "io_ratio": 0.2,
                         "platform": dict(PLATFORM), "online": []},
        }
        a = run_spec(parse_spec(data))
        b = run_spec(parse_spec(data))
        assert a.payload == b.payload
        # A different seed draws a different mix.
        data["experiment"]["seed"] = 6
        c = run_spec(parse_spec(data))
        assert c.payload["applications"] != a.payload["applications"]

    def test_analysis_same_spec_same_payload(self):
        a = run_spec(parse_spec(analysis_spec_data()))
        b = run_spec(parse_spec(analysis_spec_data()))
        assert a.payload == b.payload
        assert a.records == b.records

    def test_analysis_figures_use_fixed_seed_slots(self):
        """Deselecting figures must not perturb the remaining studies."""
        full = run_spec(parse_spec(analysis_spec_data()))
        only7 = run_spec(parse_spec(analysis_spec_data(figures=["figure7"])))
        assert (
            only7.payload["figures"]["figure7"]
            == full.payload["figures"]["figure7"]
        )
        only1 = run_spec(parse_spec(analysis_spec_data(figures=["figure1"])))
        assert (
            only1.payload["figures"]["figure1"]
            == full.payload["figures"]["figure1"]
        )


# ---------------------------------------------------------------------- #
# Equivalence: spec-driven == hand-built
# ---------------------------------------------------------------------- #
class TestEquivalence:
    def hand_built_platform(self):
        return generic(
            total_processors=400,
            node_bandwidth=1.0e6,
            system_bandwidth=4.0e7,
            name="steady-state",
        )

    def hand_built_apps(self):
        return [
            Application.periodic(
                name=a["name"],
                processors=a["processors"],
                work=a["work"],
                io_volume=a["io_volume"],
                n_instances=a["instances"],
            )
            for a in APPS
        ]

    def test_periodic_spec_matches_direct_search(self):
        result = run_spec(parse_spec(periodic_spec_data()))
        platform = self.hand_built_platform()
        apps = self.hand_built_apps()
        for key, heuristic, objective in (
            ("throughput", InsertInScheduleThrou(), "system_efficiency"),
            ("congestion", InsertInScheduleCong(), "dilation"),
        ):
            direct = search_period(
                heuristic, platform, apps, objective=objective,
                epsilon=0.2, max_period_factor=4.0,
            )
            summary = direct.best_schedule.summary()
            got = result.payload["periodic"][key]
            assert got["best_period"] == direct.best_period
            assert got["system_efficiency"] == summary.system_efficiency
            assert got["dilation"] == summary.dilation
            assert len(got["sweep"]) == len(direct.sweep)

    def test_periodic_online_half_matches_direct_grid(self):
        result = run_spec(parse_spec(periodic_spec_data()))
        scenario = Scenario(
            platform=self.hand_built_platform(),
            applications=tuple(self.hand_built_apps()),
            label="direct",
        )
        cases = [SchedulerCase(name=n) for n in ("MaxSysEff", "MinDilation")]
        grid = run_grid([scenario], cases)
        for case in grid.cases:
            got = result.payload["online"][case.scheduler_label]
            assert got["system_efficiency"] == case.system_efficiency
            assert got["dilation"] == case.dilation
            assert got["makespan"] == case.makespan

    def test_figure1_spec_matches_direct_study(self):
        seed = 9
        result = run_spec(parse_spec(analysis_spec_data(seed,
                                                        figures=["figure1"])))
        direct = throughput_decrease_study(
            8,
            platform=intrepid(),
            applications_per_batch=4,
            release_spread=0.0,
            rng=spawn_rngs(seed, 3)[0],
            max_time=4000.0,
        )
        got = result.payload["figures"]["figure1"]
        assert got["histogram"] == list(direct.histogram)
        assert got["mean_decrease"] == direct.mean_decrease
        assert got["n_applications"] == direct.n_applications

    def test_figure5_spec_matches_direct_characterization(self):
        seed = 9
        result = run_spec(parse_spec(analysis_spec_data(seed,
                                                        figures=["figure5"])))
        usage = characterize(
            generate_records(60, intrepid(), spawn_rngs(seed, 3)[1],
                             duration_days=365.0, coverage=0.5),
            duration_days=365.0,
        )
        got = result.payload["figures"]["figure5"]
        assert got["daily_node_hours"] == {
            c.value: v for c, v in usage.daily_node_hours.items()
        }
        assert got["job_counts"] == {
            c.value: n for c, n in usage.job_counts.items()
        }

    def test_figure7_spec_matches_direct_study(self):
        seed = 9
        result = run_spec(parse_spec(analysis_spec_data(seed,
                                                        figures=["figure7"])))
        direct = sensitivity_study(
            (0, 25),
            schedulers=("MaxSysEff",),
            n_repetitions=2,
            platform=intrepid(),
            rng=spawn_rngs(seed, 3)[2],
            max_time=4000.0,
        )
        got = result.payload["figures"]["figure7"]
        assert got["sensibilities_percent"] == direct.sensibilities()
        assert (
            got["series"]["MaxSysEff"]["system_efficiency"]
            == direct.series("MaxSysEff", "system_efficiency")
        )
        assert (
            got["series"]["MaxSysEff"]["dilation"]
            == direct.series("MaxSysEff", "dilation")
        )


# ---------------------------------------------------------------------- #
# Progress callbacks
# ---------------------------------------------------------------------- #
class TestProgress:
    def test_grid_progress_fires_once_per_cell(self):
        data = {
            "experiment": {"kind": "grid", "seed": 1, "max_time": 500.0},
            "platform": dict(PLATFORM),
            "scenarios": [{"kind": "mix", "small": 2, "repetitions": 2}],
            "schedulers": {"names": ["FairShare", "MaxSysEff"]},
        }
        lines: list[str] = []
        run_spec(parse_spec(data), progress=lines.append)
        # 2 repetitions x 2 schedulers.
        assert len(lines) == 4
        assert lines[0].startswith("cell 1/4:")
        assert lines[-1].startswith("cell 4/4:")

    def test_parallel_grid_progress_matches_serial(self):
        data = {
            "experiment": {"kind": "grid", "seed": 1, "max_time": 500.0,
                           "workers": 2},
            "platform": dict(PLATFORM),
            "scenarios": [{"kind": "mix", "small": 2, "repetitions": 2}],
            "schedulers": {"names": ["FairShare", "MaxSysEff"]},
        }
        parallel_lines: list[str] = []
        parallel = run_spec(parse_spec(data), progress=parallel_lines.append)
        data["experiment"]["workers"] = 1
        serial_lines: list[str] = []
        serial = run_spec(parse_spec(data), progress=serial_lines.append)
        # Results are collected in submission order, so the streamed lines
        # are identical too — parallelism only changes wall-clock time.
        assert parallel_lines == serial_lines
        assert parallel.records == serial.records

    def test_periodic_progress_covers_sweeps_and_online_cells(self):
        lines: list[str] = []
        run_spec(parse_spec(periodic_spec_data()), progress=lines.append)
        sweeps = [line for line in lines if line.startswith("periodic ")]
        cells = [line for line in lines if line.startswith("cell ")]
        assert len(sweeps) == 2  # one per heuristic
        assert len(cells) == 2  # one per online scheduler
        assert len(lines) == 4

    def test_analysis_progress_streams_levels_and_studies(self):
        lines: list[str] = []
        run_spec(
            parse_spec(analysis_spec_data(figures=["figure7"])),
            progress=lines.append,
        )
        levels = [line for line in lines if line.startswith("sensibility ")]
        # One line per sensibility level, plus the per-cell grid lines from
        # run_grid and the figure summary.
        assert len(levels) == 2
        assert lines[-1].startswith("figure7:")

    def test_no_progress_callback_is_silent_and_identical(self):
        lines: list[str] = []
        with_progress = run_spec(
            parse_spec(periodic_spec_data()), progress=lines.append
        )
        without = run_spec(parse_spec(periodic_spec_data()))
        assert with_progress.payload == without.payload
        assert lines  # the callback actually fired


# ---------------------------------------------------------------------- #
# Malformed specs
# ---------------------------------------------------------------------- #
class TestErrors:
    def expect(self, data: dict, *needles: str) -> str:
        with pytest.raises(SpecError) as excinfo:
            parse_spec(data)
        message = str(excinfo.value)
        for needle in needles:
            assert needle in message, f"{needle!r} not in error: {message}"
        return message

    def test_periodic_rejects_max_time_at_parse_and_run(self):
        """Truncating only the online half would skew the comparison."""
        data = periodic_spec_data()
        data["experiment"]["max_time"] = 100.0
        self.expect(data, "max_time", "periodic")
        # A CLI --max-time override lands after parsing; the runner rejects it.
        spec = parse_spec(periodic_spec_data()).with_overrides(max_time=100.0)
        with pytest.raises(SpecError, match="max_time is not supported"):
            run_spec(spec)

    def test_periodic_max_period_below_minimum_fails_at_build_time(self):
        """`repro validate` shares build_periodic_setup with `repro run`, so
        an unsweepable max_period must fail validation, not just the run."""
        from repro.config import build_periodic_setup

        data = periodic_spec_data()
        data["periodic"]["max_period"] = 1.0
        spec = parse_spec(data)  # parse alone cannot know the minimum period
        with pytest.raises(SpecError, match="minimum period"):
            build_periodic_setup(spec.body, spec.seed)
        with pytest.raises(SpecError, match="minimum period"):
            run_spec(spec)

    def test_periodic_oversubscribed_apps_fail_at_build_time(self):
        """Explicit apps exceeding the machine must fail validate/run even
        with online = [], where no Scenario would ever check the budget."""
        from repro.config import build_periodic_setup

        data = periodic_spec_data()
        data["periodic"]["online"] = []
        for app in data["periodic"]["apps"]:
            app["processors"] = 200  # 3 x 200 > the 400-processor platform
        spec = parse_spec(data)
        with pytest.raises(SpecError, match="processors"):
            build_periodic_setup(spec.body, spec.seed)
        with pytest.raises(SpecError, match="processors"):
            run_spec(spec)

    def test_heuristic_table_backs_both_parser_and_runner(self):
        """The accepted-name list and the runner's dispatch share one table."""
        from repro.config.spec import PERIODIC_HEURISTIC_TABLE, PERIODIC_HEURISTICS

        assert tuple(PERIODIC_HEURISTIC_TABLE) == PERIODIC_HEURISTICS

    def test_periodic_requires_apps_or_mix(self):
        self.expect(
            {"experiment": {"kind": "periodic"}, "periodic": {}},
            "periodic", "needs applications",
        )

    def test_periodic_rejects_apps_and_mix_together(self):
        data = periodic_spec_data()
        data["periodic"]["small"] = 2
        self.expect(data, "not both")

    def test_periodic_unknown_heuristic_lists_choices(self):
        data = periodic_spec_data()
        data["periodic"]["heuristics"] = ["fastest"]
        self.expect(data, "periodic.heuristics[0]", "fastest", "throughput")

    def test_periodic_bad_online_scheduler_name(self):
        data = periodic_spec_data()
        data["periodic"]["online"] = ["MaxSysEfficiency"]
        self.expect(data, "periodic.online[0]", "MaxSysEff")

    def test_periodic_rejects_nonzero_release(self):
        data = periodic_spec_data()
        data["periodic"]["apps"][1]["release"] = 5.0
        self.expect(data, "periodic.apps[1].release", "steady-state")

    def test_periodic_rejects_duplicate_app_names(self):
        data = periodic_spec_data()
        data["periodic"]["apps"][2]["name"] = "checkpointer"
        self.expect(data, "periodic.apps[2].name", "checkpointer")

    def test_analysis_unknown_figure_lists_choices(self):
        self.expect(
            {"experiment": {"kind": "analysis"},
             "analysis": {"figures": ["figure2"]}},
            "analysis.figures[0]", "figure2", "figure1",
        )

    def test_analysis_duplicate_sensibilities_rejected(self):
        data = analysis_spec_data()
        data["analysis"]["figure7"]["sensibilities"] = [0, 10, 10]
        self.expect(data, "analysis.figure7.sensibilities[2]", "duplicates")

    def test_analysis_out_of_range_sensibility_rejected(self):
        data = analysis_spec_data()
        data["analysis"]["figure7"]["sensibilities"] = [0, 120]
        self.expect(data, "analysis.figure7.sensibilities[1]", "<= 99")

    def test_analysis_non_numeric_sensibility_names_path(self):
        data = analysis_spec_data()
        data["analysis"]["figure7"]["sensibilities"] = [0, "lots"]
        self.expect(data, "analysis.figure7.sensibilities[1]", "number")

    def test_analysis_unknown_key_lists_expected(self):
        data = analysis_spec_data()
        data["analysis"]["figure1"]["apps_per_batch"] = 4  # typo
        self.expect(data, "apps_per_batch", "applications_per_batch")

    def test_analysis_batch_of_one_rejected(self):
        data = analysis_spec_data()
        data["analysis"]["figure1"]["applications_per_batch"] = 1
        self.expect(data, "analysis.figure1.applications_per_batch", ">= 2")

"""Engine tests: timing correctness, conservation, burst buffers, truncation."""

from __future__ import annotations

import math

import pytest

from repro.core.allocation import BandwidthAllocation
from repro.core.application import Application
from repro.core.events import EventLog, EventType
from repro.core.scenario import Scenario
from repro.online.baselines import FairShare
from repro.online.heuristics import MaxSysEff, MinDilation, RoundRobin
from repro.simulator.engine import (
    SimulationError,
    Simulator,
    SimulatorConfig,
    StallError,
    simulate,
)
from repro.simulator.interference import NO_INTERFERENCE
from repro.simulator.reference import reference_simulate
from repro.utils.validation import ValidationError


def ideal_fair_share() -> FairShare:
    """Work-conserving fair share (no interference) — easy to reason about."""
    return FairShare(name="IdealShare", interference=NO_INTERFERENCE)


class TestSingleApplication:
    def test_dedicated_timing_node_limited(self, small_platform):
        # 10 procs * 1 MB/s = 10 MB/s; 100 MB -> 10 s of I/O per instance.
        app = Application.periodic("solo", 10, work=100.0, io_volume=1e8, n_instances=3)
        scenario = Scenario(platform=small_platform, applications=(app,))
        result = simulate(scenario, ideal_fair_share())
        assert result.makespan == pytest.approx(3 * (100.0 + 10.0))
        record = result.record("solo")
        assert record.executed_work == pytest.approx(300.0)
        assert record.total_io_transferred == pytest.approx(3e8)
        assert record.dilation() == pytest.approx(1.0)

    def test_dedicated_timing_system_limited(self, small_platform):
        # 50 procs * 1 MB/s = 50 MB/s > B = 20 MB/s; 200 MB -> 10 s per instance.
        app = Application.periodic("solo", 50, work=10.0, io_volume=2e8, n_instances=2)
        scenario = Scenario(platform=small_platform, applications=(app,))
        result = simulate(scenario, ideal_fair_share())
        assert result.makespan == pytest.approx(2 * (10.0 + 10.0))

    def test_single_app_efficiency_is_upper_limit(self, small_platform, single_app):
        scenario = Scenario(platform=small_platform, applications=(single_app,))
        summary = simulate(scenario, ideal_fair_share()).summary()
        assert summary.system_efficiency == pytest.approx(summary.upper_limit)
        assert summary.dilation == pytest.approx(1.0)

    def test_pure_compute_application(self, small_platform):
        app = Application.periodic("cpu", 10, work=50.0, io_volume=0.0, n_instances=4)
        scenario = Scenario(platform=small_platform, applications=(app,))
        result = simulate(scenario, ideal_fair_share())
        assert result.makespan == pytest.approx(200.0)
        assert result.record("cpu").total_io_transferred == 0.0

    def test_pure_io_application(self, small_platform):
        app = Application.periodic("io", 10, work=0.0, io_volume=1e8, n_instances=2)
        scenario = Scenario(platform=small_platform, applications=(app,))
        result = simulate(scenario, ideal_fair_share())
        assert result.makespan == pytest.approx(20.0)

    def test_release_time_offsets_completion(self, small_platform):
        app = Application.periodic(
            "late", 10, work=100.0, io_volume=1e8, n_instances=1, release_time=50.0
        )
        scenario = Scenario(platform=small_platform, applications=(app,))
        result = simulate(scenario, ideal_fair_share())
        assert result.record("late").completion_time == pytest.approx(50.0 + 110.0)


class TestTwoApplications:
    def test_volume_conservation(self, simple_scenario):
        for scheduler in (ideal_fair_share(), MaxSysEff(), MinDilation(), RoundRobin()):
            result = simulate(simple_scenario, scheduler)
            for app in simple_scenario:
                assert result.record(app.name).total_io_transferred == pytest.approx(
                    app.total_io_volume, rel=1e-6
                )

    def test_congestion_slows_someone_down(self, simple_scenario):
        result = simulate(simple_scenario, ideal_fair_share())
        # Two 40-proc apps want 40 MB/s each against B = 20 MB/s: congestion.
        assert result.summary().dilation > 1.0

    def test_identical_apps_same_outcome_under_fair_share(self, simple_scenario):
        result = simulate(simple_scenario, ideal_fair_share())
        dils = result.dilations()
        assert dils["alpha"] == pytest.approx(dils["beta"], rel=1e-6)

    def test_makespan_at_least_dedicated_time(self, heterogeneous_scenario):
        result = simulate(heterogeneous_scenario, MaxSysEff())
        for app in heterogeneous_scenario:
            peak = heterogeneous_scenario.platform.peak_application_bandwidth(
                app.processors
            )
            dedicated = app.total_work + app.total_io_volume / peak
            record = result.record(app.name)
            assert record.completion_time >= app.release_time + dedicated - 1e-6

    def test_favoring_beats_nothing(self, heterogeneous_scenario):
        # Any coordinated heuristic must not move less total volume.
        total = sum(a.total_io_volume for a in heterogeneous_scenario)
        for scheduler in (MaxSysEff(), MinDilation()):
            result = simulate(heterogeneous_scenario, scheduler)
            assert result.total_io_volume() == pytest.approx(total, rel=1e-6)

    def test_schedulers_are_deterministic(self, heterogeneous_scenario):
        r1 = simulate(heterogeneous_scenario, MaxSysEff())
        r2 = simulate(heterogeneous_scenario, MaxSysEff())
        assert r1.makespan == pytest.approx(r2.makespan)
        assert r1.summary().system_efficiency == pytest.approx(
            r2.summary().system_efficiency
        )


class TestEventLog:
    def test_event_log_contents(self, small_platform, single_app):
        scenario = Scenario(platform=small_platform, applications=(single_app,))
        log = EventLog()
        simulate(scenario, ideal_fair_share(), SimulatorConfig(record_events=True), log)
        assert len(log.of_type(EventType.APP_RELEASE)) == 1
        assert len(log.of_type(EventType.IO_REQUEST)) == single_app.n_instances
        assert len(log.of_type(EventType.IO_COMPLETE)) == single_app.n_instances
        assert len(log.of_type(EventType.APP_COMPLETE)) == 1
        times = [e.time for e in log]
        assert times == sorted(times)


class TestInstanceRecords:
    def test_instance_records_cover_all_instances(self, simple_scenario):
        result = simulate(simple_scenario, MaxSysEff())
        for app in simple_scenario:
            records = result.record(app.name).instances
            assert len(records) == app.n_instances
            assert [r.index for r in records] == list(range(app.n_instances))
            for r in records:
                assert r.compute_end == pytest.approx(r.compute_start + r.work)
                assert r.io_end >= r.compute_end - 1e-9
                if r.io_first_transfer is not None:
                    assert r.io_first_transfer >= r.compute_end - 1e-9
                    assert r.io_wait >= -1e-9

    def test_io_phase_durations_sum_to_time_in_io(self, simple_scenario):
        result = simulate(simple_scenario, MinDilation())
        rec = result.record("alpha")
        assert rec.time_in_io_phases == pytest.approx(
            sum(r.io_phase_duration for r in rec.instances)
        )


class TestBurstBuffer:
    def make_scenario(self, bb_platform):
        apps = tuple(
            Application.periodic(f"app{i}", 30, work=20.0, io_volume=2e8, n_instances=2)
            for i in range(3)
        )
        return Scenario(platform=bb_platform, applications=apps)

    def test_requires_spec(self, small_platform, single_app):
        scenario = Scenario(platform=small_platform, applications=(single_app,))
        with pytest.raises(ValidationError):
            Simulator(scenario, SimulatorConfig(use_burst_buffer=True))

    def test_burst_buffer_statistics_present(self, bb_platform):
        scenario = self.make_scenario(bb_platform)
        result = simulate(
            scenario, ideal_fair_share(), SimulatorConfig(use_burst_buffer=True)
        )
        assert result.burst_buffer is not None
        assert result.burst_buffer.total_absorbed > 0.0

    def test_burst_buffer_speeds_up_congested_run(self, bb_platform):
        scenario = self.make_scenario(bb_platform)
        plain = simulate(scenario.with_platform(bb_platform.without_burst_buffer()),
                         FairShare())
        buffered = simulate(
            scenario, FairShare(), SimulatorConfig(use_burst_buffer=True)
        )
        assert buffered.summary().system_efficiency >= plain.summary().system_efficiency

    def test_volumes_conserved_with_burst_buffer(self, bb_platform):
        scenario = self.make_scenario(bb_platform)
        result = simulate(
            scenario, ideal_fair_share(), SimulatorConfig(use_burst_buffer=True)
        )
        for app in scenario:
            assert result.record(app.name).total_io_transferred == pytest.approx(
                app.total_io_volume, rel=1e-6
            )


class TestTruncation:
    def test_max_time_truncates(self, simple_scenario):
        result = simulate(
            simple_scenario, ideal_fair_share(), SimulatorConfig(max_time=60.0)
        )
        assert result.makespan <= 60.0 + 1e-6
        # Efficiency is still well defined on the truncated run.
        summary = result.summary()
        assert 0.0 <= summary.system_efficiency <= 100.0

    def test_max_events_guard(self, simple_scenario):
        with pytest.raises(SimulationError):
            simulate(simple_scenario, ideal_fair_share(), SimulatorConfig(max_events=2))


class _NeverAllocate:
    """A pathological scheduler that stalls every I/O candidate forever."""

    name = "never"

    def allocate(self, view):
        return BandwidthAllocation.empty()

    def reset(self):
        pass


class TestGuardRails:
    """The engine's safety valves: stalled schedulers and event explosions."""

    def test_zero_allocation_forever_raises_stall_error(self, simple_scenario):
        # Both applications finish their compute phase and wait for
        # bandwidth that never comes: no future event exists to unblock
        # them, which must be detected as a stall, not an endless loop.
        with pytest.raises(StallError, match="stalled"):
            simulate(simple_scenario, _NeverAllocate())

    def test_reference_engine_stalls_identically(self, simple_scenario):
        with pytest.raises(StallError):
            reference_simulate(simple_scenario, _NeverAllocate())

    def test_stall_error_is_a_simulation_error(self):
        assert issubclass(StallError, SimulationError)

    def test_pending_release_defers_the_stall(self, small_platform):
        # A stingy scheduler cannot stall the run while another application
        # still has a pending release (a genuine future event) — the stall
        # is only declared once no event can ever unblock the candidates.
        early = Application.periodic(
            "early", 10, work=10.0, io_volume=1e8, n_instances=1
        )
        late = Application.periodic(
            "late", 10, work=10.0, io_volume=1e8, n_instances=1, release_time=500.0
        )
        scenario = Scenario(platform=small_platform, applications=(early, late))
        with pytest.raises(StallError) as err:
            simulate(scenario, _NeverAllocate())
        # Both applications made it into the stalled candidate set, so the
        # late release did fire before the stall was declared.
        assert "2 application(s)" in str(err.value)

    def test_permanent_blackout_raises_stall_error_not_livelock(
        self, small_platform
    ):
        # Satellite 3 regression: a blackout window that never lifts leaves
        # every I/O candidate waiting on bandwidth that never returns.  The
        # engines must diagnose the stall — naming the stalled applications,
        # the simulation time, and the active fault window — instead of
        # spinning forever.
        from repro.faults import BandwidthWindow, FaultModel

        apps = tuple(
            Application.periodic(
                f"dark-{i}", 10, work=10.0, io_volume=1e8, n_instances=2
            )
            for i in range(2)
        )
        scenario = Scenario(
            platform=small_platform, applications=apps
        ).with_faults(
            FaultModel(
                windows=(
                    BandwidthWindow(start=5.0, end=math.inf, factor=0.0),
                )
            )
        )
        for run in (simulate, reference_simulate):
            with pytest.raises(StallError) as err:
                run(scenario, ideal_fair_share())
            message = str(err.value)
            assert "stalled" in message
            assert "2 application(s)" in message
            assert "dark-0" in message and "dark-1" in message
            assert "simulation time" in message
            assert "fault window" in message
            assert "factor=0" in message

    def test_finite_blackout_does_not_stall(self, small_platform):
        # The same blackout with an end is just a delay: once the window
        # lifts the transfers resume and the run completes.
        from repro.faults import BandwidthWindow, FaultModel

        app = Application.periodic(
            "waits", 10, work=10.0, io_volume=1e8, n_instances=1
        )
        scenario = Scenario(
            platform=small_platform, applications=(app,)
        ).with_faults(
            FaultModel(
                windows=(BandwidthWindow(start=5.0, end=50.0, factor=0.0),)
            )
        )
        result = simulate(scenario, ideal_fair_share())
        assert result.record("waits").completion_time > 50.0
        assert result.fault_stats.blackout_time > 0.0

    def test_max_events_exhaustion_message(self, simple_scenario):
        with pytest.raises(SimulationError, match="max_events=3"):
            simulate(
                simple_scenario, ideal_fair_share(), SimulatorConfig(max_events=3)
            )

    def test_max_events_not_triggered_by_normal_run(self, simple_scenario):
        # A correct run needs n_events well below the valve; make sure the
        # optimized engine does not generate spurious (stale-heap) events.
        result = simulate(simple_scenario, ideal_fair_share())
        generous = simulate(
            simple_scenario,
            ideal_fair_share(),
            SimulatorConfig(max_events=result.n_events),
        )
        assert generous.n_events == result.n_events


class TestBadScheduler:
    def test_wrong_return_type_raises(self, simple_scenario):
        class Broken:
            name = "broken"

            def allocate(self, view):
                return {"alpha": 1.0}

            def reset(self):
                pass

        with pytest.raises(SimulationError):
            simulate(simple_scenario, Broken())

    def test_over_allocation_raises(self, simple_scenario):
        from repro.core.allocation import BandwidthAllocation

        class Greedy:
            name = "greedy"

            def allocate(self, view):
                return BandwidthAllocation(
                    {a.name: view.platform.node_bandwidth for a in view.applications}
                )

            def reset(self):
                pass

        # 2 * 40 procs * 1 MB/s = 80 MB/s > B = 20 MB/s: must be rejected.
        with pytest.raises(ValidationError):
            simulate(simple_scenario, Greedy())

"""The end-to-end experiment benchmark (``BENCH_grid.json``)."""

from __future__ import annotations

import json

import pytest

from repro.config.loader import load_spec
from repro.config.spec import AnalysisSpec, PeriodicSpec
from repro.experiments.grid_bench import (
    DEFAULT_BENCH_SPECS,
    DEFAULT_CAMPAIGN_SPEC,
    bench_spec_path,
    grid_bench_broken,
    measure_period_sweep,
    run_grid_bench,
    scaled_spec,
)
from repro.utils.validation import ValidationError


class TestSpecPathAndScaling:
    def test_bundled_names_resolve(self):
        for name in DEFAULT_BENCH_SPECS:
            path = bench_spec_path(name)
            assert path.is_file(), path
            load_spec(path)  # parses cleanly

    def test_explicit_path_passes_through(self):
        assert str(bench_spec_path("foo/bar.toml")) == "foo/bar.toml"

    def test_scale_one_is_identity(self):
        spec = load_spec(bench_spec_path("analysis_figures"))
        assert scaled_spec(spec, 1) is spec

    def test_analysis_scaling(self):
        spec = load_spec(bench_spec_path("analysis_figures"))
        scaled = scaled_spec(spec, 3)
        assert isinstance(scaled.body, AnalysisSpec)
        assert (
            scaled.body.figure1.n_applications
            == 3 * spec.body.figure1.n_applications
        )
        assert (
            scaled.body.figure7.n_repetitions
            == 3 * spec.body.figure7.n_repetitions
        )
        # Everything else untouched.
        assert scaled.body.figure5 == spec.body.figure5
        assert scaled.seed == spec.seed

    def test_periodic_scaling(self):
        spec = load_spec(bench_spec_path("periodic"))
        scaled = scaled_spec(spec, 4)
        assert isinstance(scaled.body, PeriodicSpec)
        assert scaled.body.epsilon == spec.body.epsilon / 4

    def test_scale_must_be_positive(self):
        spec = load_spec(bench_spec_path("periodic"))
        with pytest.raises(ValidationError):
            scaled_spec(spec, 0)


class TestGridBenchPayload:
    def test_smoke_payload_shape_and_identity(self):
        payload = run_grid_bench(scale=1, workers=2)
        assert payload["benchmark"] == "experiment_grid"
        assert {entry["spec"] for entry in payload["specs"]} == set(
            DEFAULT_BENCH_SPECS
        )
        for entry in payload["specs"]:
            assert entry["identical"] is True
            assert entry["n_cells"] > 0
            assert entry["serial"]["seconds"] > 0
            assert entry["pooled"]["seconds"] > 0
            assert entry["serial"]["cells_per_sec"] > 0
            assert entry["pooled"]["cells_per_sec"] > 0
            # The telemetry spans supply a per-stage wall-time breakdown.
            for mode in ("serial", "pooled"):
                stages = entry[mode]["stage_seconds"]
                assert {"build", "run", "report"} <= set(stages)
                assert all(v >= 0 for v in stages.values())
                assert stages["run"] <= entry[mode]["seconds"]
        sweeps = payload["period_sweep"]["sweeps"]
        assert {s["heuristic"] for s in sweeps} == {"throughput", "congestion"}
        for s in sweeps:
            assert s["identical"] is True
            assert 0 < s["n_builds_warm"] <= s["n_sweep_points"]
            assert s["naive"]["sweep_points_per_sec"] > 0
            assert s["warm"]["sweep_points_per_sec"] > 0
        campaign = payload["campaign"]
        assert campaign["spec"] == DEFAULT_CAMPAIGN_SPEC
        assert campaign["identical"] is True
        assert campaign["n_cells"] > 0
        assert campaign["serial"]["cells_per_sec"] > 0
        assert campaign["sharded"]["cells_per_sec"] > 0
        assert campaign["sharded"]["workers"] >= 2
        assert grid_bench_broken(payload) == []
        json.dumps(payload)  # JSON-serializable as written

    def test_broken_detection(self):
        payload = {
            "specs": [{"spec": "a", "identical": False}],
            "period_sweep": {
                "sweeps": [{"heuristic": "throughput", "identical": False}]
            },
            "campaign": {"spec": "c", "identical": False},
        }
        assert grid_bench_broken(payload) == [
            "a", "period-sweep:throughput", "campaign:c",
        ]

    def test_sweep_bench_rejects_non_periodic_spec(self):
        with pytest.raises(ValidationError, match="periodic"):
            measure_period_sweep(spec_name="analysis_figures")
